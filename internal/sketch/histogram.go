package sketch

import (
	"math"
	"sort"
)

// Histogram is a log-scale bucketed histogram of non-negative values.
// Buckets grow geometrically, so quantiles keep constant relative error
// (about half the growth factor) over the full range. The zero value is
// not usable; create one with NewHistogram.
type Histogram struct {
	bounds []float64 // upper bound of each bucket, ascending
	counts []uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram covering (0, max] with the given
// growth factor (e.g. 1.2 gives ~10 % relative quantile error). Values
// above max land in the final overflow bucket; zero and negatives count
// into the first bucket.
func NewHistogram(maxValue, growth float64) *Histogram {
	if growth <= 1.01 {
		growth = 1.2
	}
	if maxValue <= 1 {
		maxValue = 1
	}
	var bounds []float64
	for b := 1.0; b < maxValue*growth; b *= growth {
		bounds = append(bounds, b)
	}
	bounds = append(bounds, math.Inf(1))
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx == len(h.bounds) {
		idx--
	}
	h.counts[idx]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the arithmetic mean of observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observed value, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed value, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1), linearly
// interpolated within the containing bucket. Empty histograms yield 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if math.IsInf(hi, 1) {
				hi = h.max
			}
			if hi > h.max {
				hi = h.max
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.max
}

// Quartiles returns the 25th, 50th and 75th percentiles, the form the
// paper stores for resp_delays, network_hops and resp_size.
func (h *Histogram) Quartiles() (q25, q50, q75 float64) {
	return h.Quantile(0.25), h.Quantile(0.5), h.Quantile(0.75)
}

// Merge adds other's observations into h. Both histograms must have been
// created with the same parameters; mismatched shapes are merged
// bucket-by-index up to the shorter length.
func (h *Histogram) Merge(other *Histogram) {
	n := len(h.counts)
	if len(other.counts) < n {
		n = len(other.counts)
	}
	for i := 0; i < n; i++ {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears the histogram for the next time window.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.n = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}
