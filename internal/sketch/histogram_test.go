package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1000, 1.2)
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram not all-zero")
	}
}

func TestHistogramSingle(t *testing.T) {
	h := NewHistogram(1000, 1.2)
	h.Observe(42)
	if h.N() != 1 {
		t.Errorf("n = %d", h.N())
	}
	if h.Mean() != 42 {
		t.Errorf("mean = %f", h.Mean())
	}
	q := h.Quantile(0.5)
	if q < 35 || q > 50 {
		t.Errorf("median = %f, want ~42", q)
	}
	if h.Min() != 42 || h.Max() != 42 {
		t.Errorf("min/max = %f/%f", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram(1e6, 1.1)
	var exact []float64
	for i := 0; i < 50000; i++ {
		// Log-uniform values, like response delays.
		v := math.Exp(rng.Float64() * math.Log(1e5))
		exact = append(exact, v)
		h.Observe(v)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		want := exact[int(q*float64(len(exact)))]
		got := h.Quantile(q)
		relErr := math.Abs(got-want) / want
		if relErr > 0.12 {
			t.Errorf("q%.2f: got %.1f want %.1f (rel err %.3f)", q, got, want, relErr)
		}
	}
}

func TestHistogramQuartiles(t *testing.T) {
	h := NewHistogram(1000, 1.05)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	q25, q50, q75 := h.Quartiles()
	if math.Abs(q25-250) > 30 || math.Abs(q50-500) > 40 || math.Abs(q75-750) > 50 {
		t.Errorf("quartiles = %.0f %.0f %.0f", q25, q50, q75)
	}
	if !(q25 <= q50 && q50 <= q75) {
		t.Error("quartiles not monotone")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(100, 1.2)
	for _, v := range []float64{3, 7, 11, 90} {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 3 {
		t.Errorf("q0 = %f", got)
	}
	if got := h.Quantile(1); got != 90 {
		t.Errorf("q1 = %f", got)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		v := h.Quantile(q)
		if v < 3 || v > 90 {
			t.Errorf("q%.1f = %f out of observed range", q, v)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(100, 1.2)
	h.Observe(1e9) // way past max
	if h.N() != 1 {
		t.Fatal("overflow not counted")
	}
	if got := h.Quantile(0.5); got != 1e9 {
		t.Errorf("median of single overflow = %f", got)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram(100, 1.2)
	h.Observe(0)
	h.Observe(-5)
	if h.N() != 2 {
		t.Error("zero/negative not counted")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1000, 1.2)
	b := NewHistogram(1000, 1.2)
	c := NewHistogram(1000, 1.2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		v := rng.Float64() * 900
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		c.Observe(v)
	}
	a.Merge(b)
	if a.N() != c.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), c.N())
	}
	if math.Abs(a.Mean()-c.Mean()) > 1e-9 {
		t.Errorf("merged mean %f != %f", a.Mean(), c.Mean())
	}
	if math.Abs(a.Quantile(0.5)-c.Quantile(0.5)) > 1e-9 {
		t.Errorf("merged median %f != %f", a.Quantile(0.5), c.Quantile(0.5))
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(100, 1.2)
	h.Observe(5)
	h.Reset()
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("reset incomplete")
	}
	h.Observe(9)
	if h.N() != 1 || h.Mean() != 9 {
		t.Error("histogram unusable after reset")
	}
}

func TestHistogramDegenerateParams(t *testing.T) {
	h := NewHistogram(0, 1.0)
	h.Observe(10)
	if h.N() != 1 {
		t.Error("degenerate histogram unusable")
	}
}

func TestTopValuesBasic(t *testing.T) {
	tv := NewTopValues(16)
	for i := 0; i < 70; i++ {
		tv.Observe(300)
	}
	for i := 0; i < 20; i++ {
		tv.Observe(60)
	}
	for i := 0; i < 10; i++ {
		tv.Observe(86400)
	}
	top := tv.Top(3)
	if len(top) != 3 {
		t.Fatalf("top len %d", len(top))
	}
	if top[0].Value != 300 || top[1].Value != 60 || top[2].Value != 86400 {
		t.Errorf("order: %+v", top)
	}
	if math.Abs(top[0].Share-0.7) > 1e-9 {
		t.Errorf("share = %f", top[0].Share)
	}
	v, share, ok := tv.Mode()
	if !ok || v != 300 || math.Abs(share-0.7) > 1e-9 {
		t.Errorf("mode = %d %f %v", v, share, ok)
	}
}

func TestTopValuesEmpty(t *testing.T) {
	tv := NewTopValues(4)
	if _, _, ok := tv.Mode(); ok {
		t.Error("mode on empty")
	}
	if len(tv.Top(3)) != 0 {
		t.Error("top on empty")
	}
}

func TestTopValuesTieBreak(t *testing.T) {
	tv := NewTopValues(8)
	tv.Observe(500)
	tv.Observe(100)
	top := tv.Top(2)
	if top[0].Value != 100 || top[1].Value != 500 {
		t.Errorf("tie order: %+v", top)
	}
}

func TestTopValuesCap(t *testing.T) {
	tv := NewTopValues(4)
	for v := uint32(0); v < 100; v++ {
		tv.Observe(v)
	}
	if tv.Distinct() != 4 {
		t.Errorf("distinct = %d, want capped 4", tv.Distinct())
	}
	if tv.Total() != 100 {
		t.Errorf("total = %d", tv.Total())
	}
}

func TestTopValuesMerge(t *testing.T) {
	a, b := NewTopValues(8), NewTopValues(8)
	for i := 0; i < 10; i++ {
		a.Observe(1)
		b.Observe(1)
		b.Observe(2)
	}
	a.Merge(b)
	if a.Total() != 30 {
		t.Errorf("total = %d", a.Total())
	}
	top := a.Top(2)
	if top[0].Value != 1 || top[0].Count != 20 || top[1].Value != 2 || top[1].Count != 10 {
		t.Errorf("merged top: %+v", top)
	}
}

func TestTopValuesReset(t *testing.T) {
	tv := NewTopValues(4)
	tv.Observe(9)
	tv.Reset()
	if tv.Total() != 0 || tv.Distinct() != 0 {
		t.Error("reset incomplete")
	}
}
