package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Quantiles always lie within [min, max] and are monotone in q.
func TestQuantileBoundsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(n uint16) bool {
		h := NewHistogram(1e6, 1.2)
		count := int(n)%500 + 1
		lo, hi := 1e18, -1e18
		for i := 0; i < count; i++ {
			v := rng.Float64() * 1e5
			h.Observe(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		prev := -1e18
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := h.Quantile(q)
			if v < lo-1e-9 || v > hi+1e-9 || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Merging two histograms equals observing the union stream, for every
// aggregate the Observatory reads.
func TestHistogramMergeEquivalenceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := func(na, nb uint8) bool {
		a := NewHistogram(1e4, 1.15)
		b := NewHistogram(1e4, 1.15)
		u := NewHistogram(1e4, 1.15)
		for i := 0; i < int(na); i++ {
			v := rng.Float64() * 9000
			a.Observe(v)
			u.Observe(v)
		}
		for i := 0; i < int(nb); i++ {
			v := rng.Float64() * 9000
			b.Observe(v)
			u.Observe(v)
		}
		a.Merge(b)
		if a.N() != u.N() || a.Min() != u.Min() || a.Max() != u.Max() {
			return false
		}
		return abs(a.Mean()-u.Mean()) < 1e-9 && abs(a.Quantile(0.5)-u.Quantile(0.5)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The TopValues total always equals the number of observations and the
// share of any reported value never exceeds 1.
func TestTopValuesInvariantsQuick(t *testing.T) {
	tv := NewTopValues(8)
	var observed uint64
	f := func(v uint16) bool {
		tv.Observe(uint32(v) % 64)
		observed++
		if tv.Total() != observed {
			return false
		}
		for _, vc := range tv.Top(3) {
			if vc.Share < 0 || vc.Share > 1 || vc.Count > tv.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
