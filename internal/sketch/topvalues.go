package sketch

import "sort"

// TopValues tracks the distribution of a (typically low-cardinality)
// discrete value such as a record TTL, and reports the most frequent
// values with their shares. The paper stores "the top-3 TTL values (and
// distributions)" per object (§2.3).
//
// To bound memory against adversarial high-cardinality inputs (e.g.
// nameservers serving a different TTL on every response, the
// "non-conforming" class of Table 4), at most maxTracked distinct values
// are held; further new values are lumped into an "other" count.
type TopValues struct {
	counts     map[uint32]uint64
	other      uint64
	total      uint64
	maxTracked int
}

// NewTopValues returns a tracker holding up to maxTracked distinct values.
func NewTopValues(maxTracked int) *TopValues {
	if maxTracked < 1 {
		maxTracked = 16
	}
	return &TopValues{counts: make(map[uint32]uint64), maxTracked: maxTracked}
}

// Observe records one occurrence of v.
func (t *TopValues) Observe(v uint32) {
	t.total++
	if _, ok := t.counts[v]; !ok && len(t.counts) >= t.maxTracked {
		t.other++
		return
	}
	t.counts[v]++
}

// ValueCount is one entry of a Top report.
type ValueCount struct {
	Value uint32
	Count uint64
	Share float64 // fraction of all observations
}

// Top returns the n most frequent values, most frequent first. Ties are
// broken by smaller value for determinism.
func (t *TopValues) Top(n int) []ValueCount {
	vcs := make([]ValueCount, 0, len(t.counts))
	for v, c := range t.counts {
		vcs = append(vcs, ValueCount{Value: v, Count: c})
	}
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].Count != vcs[j].Count {
			return vcs[i].Count > vcs[j].Count
		}
		return vcs[i].Value < vcs[j].Value
	})
	if n < len(vcs) {
		vcs = vcs[:n]
	}
	for i := range vcs {
		if t.total > 0 {
			vcs[i].Share = float64(vcs[i].Count) / float64(t.total)
		}
	}
	return vcs
}

// Mode returns the single most frequent value and its share; ok is false
// when nothing was observed.
func (t *TopValues) Mode() (v uint32, share float64, ok bool) {
	top := t.Top(1)
	if len(top) == 0 {
		return 0, 0, false
	}
	return top[0].Value, top[0].Share, true
}

// Distinct returns the number of tracked distinct values (capped at the
// tracker size).
func (t *TopValues) Distinct() int { return len(t.counts) }

// Total returns the number of observations.
func (t *TopValues) Total() uint64 { return t.total }

// Merge folds other's counts into t, respecting t's cap.
func (t *TopValues) Merge(other *TopValues) {
	for v, c := range other.counts {
		if _, ok := t.counts[v]; !ok && len(t.counts) >= t.maxTracked {
			t.other += c
		} else {
			t.counts[v] += c
		}
	}
	t.other += other.other
	t.total += other.total
}

// Reset clears the tracker for the next time window.
func (t *TopValues) Reset() {
	clear(t.counts)
	t.other = 0
	t.total = 0
}
