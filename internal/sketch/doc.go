// Package sketch provides the small summary structures behind the
// Observatory's traffic features (§2.3): counters and averages, a
// log-bucketed histogram with quantile queries (resp_delays,
// network_hops, resp_size), and a top-N value tracker with counts
// (the top-3 TTL values and their distributions).
//
// Concurrency: every structure here is single-owner, embedded in a
// features.Set and touched only by the goroutine that owns the
// corresponding top-k entry. No internal locking.
package sketch
