package features

import (
	"fmt"
	"net/netip"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/sie"
)

func okSummary(qname string, qtype dnswire.Type) *sie.Summary {
	return &sie.Summary{
		Resolver:      netip.MustParseAddr("192.0.2.10"),
		Nameserver:    netip.MustParseAddr("198.51.100.53"),
		SensorID:      1,
		QName:         qname,
		QType:         qtype,
		QDots:         dnswire.CountLabels(qname),
		Answered:      true,
		DelayMs:       20,
		Hops:          7,
		RespSize:      120,
		RCode:         dnswire.RCodeNoError,
		HasAnswerData: true,
		AnswerCount:   1,
		AnswerTTLs:    []uint32{300},
		V4Addrs:       []netip.Addr{netip.MustParseAddr("203.0.113.1")},
	}
}

func TestObserveCounters(t *testing.T) {
	s := NewSet(Config{})
	s.Observe(okSummary("www.example.com.", dnswire.TypeA))

	nx := okSummary("gone.example.com.", dnswire.TypeA)
	nx.RCode = dnswire.RCodeNXDomain
	nx.HasAnswerData = false
	nx.AnswerCount = 0
	nx.V4Addrs = nil
	nx.AnswerTTLs = nil
	s.Observe(nx)

	un := okSummary("slow.example.com.", dnswire.TypeA)
	un.Answered = false
	s.Observe(un)

	if s.Hits != 3 || s.OK != 1 || s.NXD != 1 || s.Unans != 1 {
		t.Errorf("counters: hits=%d ok=%d nxd=%d unans=%d", s.Hits, s.OK, s.NXD, s.Unans)
	}
	if s.OKAns != 1 {
		t.Errorf("ok_ans = %d", s.OKAns)
	}
	if s.Answered() != 2 {
		t.Errorf("answered = %d", s.Answered())
	}
}

func TestNoDataAndAAAA(t *testing.T) {
	s := NewSet(Config{})
	nd := okSummary("v4only.example.com.", dnswire.TypeAAAA)
	nd.HasAnswerData = false
	nd.AnswerCount = 0
	nd.V4Addrs = nil
	nd.AnswerTTLs = nil
	s.Observe(nd)
	if s.OKNil != 1 || s.OK6 != 1 || s.OK6Nil != 1 {
		t.Errorf("ok_nil=%d ok6=%d ok6nil=%d", s.OKNil, s.OK6, s.OK6Nil)
	}
	ok6 := okSummary("dual.example.com.", dnswire.TypeAAAA)
	ok6.V4Addrs = nil
	ok6.V6Addrs = []netip.Addr{netip.MustParseAddr("2001:db8::1")}
	s.Observe(ok6)
	if s.OK6 != 2 || s.OK6Nil != 1 {
		t.Errorf("after data: ok6=%d ok6nil=%d", s.OK6, s.OK6Nil)
	}
	if s.IP6s.Count() != 1 {
		t.Errorf("ip6s = %d", s.IP6s.Count())
	}
}

func TestDNSSECCounter(t *testing.T) {
	s := NewSet(Config{})
	sec := okSummary("signed.example.com.", dnswire.TypeA)
	sec.DNSSECOK = true
	sec.HasRRSIG = true
	s.Observe(sec)
	if s.OKSec != 1 {
		t.Errorf("ok_sec = %d", s.OKSec)
	}
	// DO without RRSIG does not count.
	noSig := okSummary("unsigned.example.com.", dnswire.TypeA)
	noSig.DNSSECOK = true
	s.Observe(noSig)
	if s.OKSec != 1 {
		t.Errorf("ok_sec after unsigned = %d", s.OKSec)
	}
}

func TestCardinalities(t *testing.T) {
	s := NewSet(Config{})
	for i := 0; i < 200; i++ {
		sum := okSummary(fmt.Sprintf("host%d.example.com.", i), dnswire.TypeA)
		sum.V4Addrs = []netip.Addr{netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", i%250))}
		s.Observe(sum)
	}
	approx := func(got uint64, want, tol float64) bool {
		return float64(got) > want*(1-tol) && float64(got) < want*(1+tol)
	}
	if !approx(s.QNamesA.Count(), 200, 0.15) {
		t.Errorf("qnamesa = %d", s.QNamesA.Count())
	}
	if !approx(s.QNames.Count(), 200, 0.15) {
		t.Errorf("qnames = %d", s.QNames.Count())
	}
	if s.TLDs.Count() != 1 {
		t.Errorf("tlds = %d", s.TLDs.Count())
	}
	if s.ESLDs.Count() != 1 {
		t.Errorf("eslds = %d", s.ESLDs.Count())
	}
	if !approx(s.IP4s.Count(), 200, 0.15) {
		t.Errorf("ip4s = %d", s.IP4s.Count())
	}
	if s.QTypes.Count() != 1 {
		t.Errorf("qtypes = %d", s.QTypes.Count())
	}
}

func TestAverages(t *testing.T) {
	s := NewSet(Config{})
	a := okSummary("a.example.com.", dnswire.TypeA) // 3 labels
	b := okSummary("x.y.a.example.com.", dnswire.TypeA)
	b.AnswerCount = 3
	s.Observe(a)
	s.Observe(b)
	if got := s.QDots(); got != 4 { // (3+5)/2
		t.Errorf("qdots = %f", got)
	}
	if got := s.Lvl(); got != 2 { // (1+3)/2
		t.Errorf("lvl = %f", got)
	}
}

func TestTTLTracking(t *testing.T) {
	s := NewSet(Config{})
	for i := 0; i < 9; i++ {
		sum := okSummary("t.example.com.", dnswire.TypeA)
		sum.AnswerTTLs = []uint32{300}
		s.Observe(sum)
	}
	sum := okSummary("t.example.com.", dnswire.TypeA)
	sum.AnswerTTLs = []uint32{60}
	s.Observe(sum)
	v, share, ok := s.TTL.Mode()
	if !ok || v != 300 || share != 0.9 {
		t.Errorf("ttl mode = %d %f %v", v, share, ok)
	}
}

func TestValuesSchema(t *testing.T) {
	s := NewSet(Config{})
	s.Observe(okSummary("v.example.com.", dnswire.TypeA))
	v := s.Values(1.5)
	if len(v) != len(Columns) {
		t.Fatalf("values len %d, columns %d", len(v), len(Columns))
	}
	get := func(name string) float64 { return v[ColumnIndex[name]] }
	if get("hits") != 1 || get("ok") != 1 {
		t.Errorf("hits=%f ok=%f", get("hits"), get("ok"))
	}
	if get("ttl1") != 300 || get("ttl1_share") != 1 {
		t.Errorf("ttl1=%f share=%f", get("ttl1"), get("ttl1_share"))
	}
	if get("rate") != 1.5 {
		t.Errorf("rate=%f", get("rate"))
	}
	if get("delay_q50") <= 0 {
		t.Errorf("delay_q50=%f", get("delay_q50"))
	}
	if get("qdots") != 3 {
		t.Errorf("qdots=%f", get("qdots"))
	}
}

func TestColumnIndexComplete(t *testing.T) {
	if len(ColumnIndex) != len(Columns) {
		t.Fatal("duplicate column names")
	}
	for _, name := range []string{"hits", "ok6nil", "nsttl1_share", "size_q75", "rate"} {
		if _, ok := ColumnIndex[name]; !ok {
			t.Errorf("missing column %q", name)
		}
	}
}

func TestTransportAndNegTTLFeatures(t *testing.T) {
	s := NewSet(Config{})
	tcp := okSummary("big.example.com.", dnswire.TypeTXT)
	tcp.TCP = true
	s.Observe(tcp)
	trunc := okSummary("big.example.com.", dnswire.TypeTXT)
	trunc.Trunc = true
	trunc.HasAnswerData = false
	trunc.AnswerCount = 0
	trunc.V4Addrs = nil
	trunc.AnswerTTLs = nil
	s.Observe(trunc)
	if s.TCP != 1 || s.Trunc != 1 {
		t.Errorf("tcp=%d trunc=%d", s.TCP, s.Trunc)
	}
	neg := okSummary("v4only.example.com.", dnswire.TypeAAAA)
	neg.HasAnswerData = false
	neg.AnswerCount = 0
	neg.V4Addrs = nil
	neg.AnswerTTLs = nil
	neg.HasSOA = true
	neg.SOAMinimum = 15
	s.Observe(neg)
	v, share, ok := s.NegTTL.Mode()
	if !ok || v != 15 || share != 1 {
		t.Errorf("negttl mode = %d %f %v", v, share, ok)
	}
	vals := s.Values(0)
	if vals[ColumnIndex["tcp"]] != 1 || vals[ColumnIndex["trunc"]] != 1 {
		t.Error("tcp/trunc columns wrong")
	}
	if vals[ColumnIndex["negttl1"]] != 15 {
		t.Errorf("negttl1 = %f", vals[ColumnIndex["negttl1"]])
	}
}

func TestColumnKindsForAggregation(t *testing.T) {
	// TTL-mode columns must be Mode, counters Counter, the rest Gauge —
	// the tsv layer's aggregation semantics depend on this mapping.
	kinds := map[string]Kind{}
	for _, c := range Columns {
		kinds[c.Name] = c.Kind
	}
	for _, name := range []string{"ttl1", "ttl2", "ttl3", "nsttl1", "negttl1"} {
		if kinds[name] != Mode {
			t.Errorf("%s kind = %v, want Mode", name, kinds[name])
		}
	}
	for _, name := range []string{"hits", "nxd", "ok6nil", "tcp", "trunc"} {
		if kinds[name] != Counter {
			t.Errorf("%s kind = %v, want Counter", name, kinds[name])
		}
	}
	for _, name := range []string{"qdots", "delay_q50", "ttl1_share", "rate"} {
		if kinds[name] != Gauge {
			t.Errorf("%s kind = %v, want Gauge", name, kinds[name])
		}
	}
}

func TestReset(t *testing.T) {
	s := NewSet(Config{})
	for i := 0; i < 10; i++ {
		s.Observe(okSummary(fmt.Sprintf("r%d.example.com.", i), dnswire.TypeA))
	}
	s.Reset()
	if s.Hits != 0 || s.OK != 0 || s.QNamesA.Count() != 0 || s.Delays.N() != 0 || s.TTL.Total() != 0 {
		t.Error("reset incomplete")
	}
	// Set must remain usable.
	s.Observe(okSummary("after.example.com.", dnswire.TypeA))
	if s.Hits != 1 || s.QDots() != 3 {
		t.Error("set unusable after reset")
	}
}
