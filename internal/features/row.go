package features

// Kind classifies a column for time aggregation (paper §2.4): counters
// aggregate as mean rates with missing objects counting as zero; gauges
// (averages, cardinality estimates, quantiles) aggregate as means over
// the windows where the object was present; mode columns (the dominant
// TTL values) aggregate as the window-weighted majority — averaging TTL
// values would invent TTLs nobody ever served.
type Kind int

// Column kinds; values match tsv.Kind.
const (
	Counter Kind = iota
	Gauge
	Mode
)

// Column describes one field of a feature snapshot row.
type Column struct {
	Name string
	Kind Kind
}

// Columns is the fixed schema of feature snapshots, mirroring §2.3.
var Columns = []Column{
	{"hits", Counter},
	{"unans", Counter},
	{"ok", Counter},
	{"nxd", Counter},
	{"rfs", Counter},
	{"fail", Counter},
	{"ok_ans", Counter},
	{"ok_ns", Counter},
	{"ok_add", Counter},
	{"ok_nil", Counter},
	{"ok6", Counter},
	{"ok6nil", Counter},
	{"ok_sec", Counter},
	{"tcp", Counter},
	{"trunc", Counter},
	{"qdots", Gauge},
	{"lvl", Gauge},
	{"nslvl", Gauge},
	{"srvips", Gauge},
	{"srcips", Gauge},
	{"sources", Gauge},
	{"qnamesa", Gauge},
	{"qnames", Gauge},
	{"tlds", Gauge},
	{"eslds", Gauge},
	{"qtypes", Gauge},
	{"ip4s", Gauge},
	{"ip6s", Gauge},
	{"ttl1", Mode},
	{"ttl1_share", Gauge},
	{"ttl2", Mode},
	{"ttl2_share", Gauge},
	{"ttl3", Mode},
	{"ttl3_share", Gauge},
	{"nsttl1", Mode},
	{"nsttl1_share", Gauge},
	{"negttl1", Mode},
	{"negttl1_share", Gauge},
	{"delay_q25", Gauge},
	{"delay_q50", Gauge},
	{"delay_q75", Gauge},
	{"hops_q25", Gauge},
	{"hops_q50", Gauge},
	{"hops_q75", Gauge},
	{"size_q25", Gauge},
	{"size_q50", Gauge},
	{"size_q75", Gauge},
	{"rate", Gauge},
}

// ColumnIndex maps a column name to its position in Columns.
var ColumnIndex = func() map[string]int {
	m := make(map[string]int, len(Columns))
	for i, c := range Columns {
		m[c.Name] = i
	}
	return m
}()

// Values extracts the snapshot row in Columns order. rate is the
// Space-Saving decayed rate estimate attached by the pipeline.
func (s *Set) Values(rate float64) []float64 {
	v := make([]float64, 0, len(Columns))
	v = append(v,
		float64(s.Hits), float64(s.Unans),
		float64(s.OK), float64(s.NXD), float64(s.RFS), float64(s.Fail),
		float64(s.OKAns), float64(s.OKNS), float64(s.OKAdd), float64(s.OKNil),
		float64(s.OK6), float64(s.OK6Nil), float64(s.OKSec),
		float64(s.TCP), float64(s.Trunc),
		s.QDots(), s.Lvl(), s.NSLvl(),
		float64(s.SrvIPs.Count()), float64(s.SrcIPs.Count()), float64(s.Sources.Count()),
		float64(s.QNamesA.Count()), float64(s.QNames.Count()),
		float64(s.TLDs.Count()), float64(s.ESLDs.Count()), float64(s.QTypes.Count()),
		float64(s.IP4s.Count()), float64(s.IP6s.Count()),
	)
	top := s.TTL.Top(3)
	for i := 0; i < 3; i++ {
		if i < len(top) {
			v = append(v, float64(top[i].Value), top[i].Share)
		} else {
			v = append(v, 0, 0)
		}
	}
	nstop := s.NSTTL.Top(1)
	if len(nstop) > 0 {
		v = append(v, float64(nstop[0].Value), nstop[0].Share)
	} else {
		v = append(v, 0, 0)
	}
	negtop := s.NegTTL.Top(1)
	if len(negtop) > 0 {
		v = append(v, float64(negtop[0].Value), negtop[0].Share)
	} else {
		v = append(v, 0, 0)
	}
	dq25, dq50, dq75 := s.Delays.Quartiles()
	hq25, hq50, hq75 := s.Hops.Quartiles()
	sq25, sq50, sq75 := s.Sizes.Quartiles()
	v = append(v, dq25, dq50, dq75, hq25, hq50, hq75, sq25, sq50, sq75, rate)
	return v
}
