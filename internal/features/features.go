package features

import (
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/hll"
	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/sketch"
)

// Config sizes the probabilistic structures of a Set.
type Config struct {
	// HLLPrecision is the register exponent for cardinality estimates;
	// 2^p bytes per estimator. 10 keeps per-object state near 8 kB.
	HLLPrecision uint8
	// DelayMaxMs / SizeMax bound the quartile histograms.
	DelayMaxMs float64
	SizeMax    float64
	// TTLTracked caps distinct TTL values tracked per object.
	TTLTracked int
	// Suffixes drives eTLD/eSLD extraction; nil uses the embedded list.
	Suffixes *publicsuffix.List
}

// DefaultConfig is the Observatory's standard sizing.
func DefaultConfig() Config {
	return Config{
		HLLPrecision: 10,
		DelayMaxMs:   60_000,
		SizeMax:      65_536,
		TTLTracked:   32,
		Suffixes:     publicsuffix.Default,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HLLPrecision == 0 {
		c.HLLPrecision = d.HLLPrecision
	}
	if c.DelayMaxMs == 0 {
		c.DelayMaxMs = d.DelayMaxMs
	}
	if c.SizeMax == 0 {
		c.SizeMax = d.SizeMax
	}
	if c.TTLTracked == 0 {
		c.TTLTracked = d.TTLTracked
	}
	if c.Suffixes == nil {
		c.Suffixes = d.Suffixes
	}
	return c
}

// Set accumulates the traffic features of one DNS object.
type Set struct {
	cfg Config

	// Plain counters.
	Hits   uint64 // all transactions
	Unans  uint64 // unanswered queries
	OK     uint64 // NoError responses
	NXD    uint64 // NXDOMAIN
	RFS    uint64 // Refused
	Fail   uint64 // ServFail
	OKAns  uint64 // NoError with non-empty ANSWER
	OKNS   uint64 // NoError with NS records in AUTHORITY
	OKAdd  uint64 // NoError with non-empty ADDITIONAL (minus OPT)
	OKNil  uint64 // NoError with neither answer nor delegation (NoData)
	OK6    uint64 // AAAA queries with NoError
	OK6Nil uint64 // AAAA queries with NoData
	OKSec  uint64 // DNSSEC-signed responses (DO + data + RRSIG)
	TCP    uint64 // transactions over TCP/53
	Trunc  uint64 // truncated (TC) responses forcing TCP retries

	// Averages (sum; divide by the observation count).
	qdotsSum float64
	lvlSum   float64 // records in ANSWER per response
	nslvlSum float64 // NS records in AUTHORITY per response
	answered uint64

	// Cardinality estimates.
	SrvIPs  *hll.Sketch // nameserver IPs
	SrcIPs  *hll.Sketch // resolver IPs
	Sources *hll.Sketch // contributing sensors
	QNamesA *hll.Sketch // distinct QNAMEs, all queries
	QNames  *hll.Sketch // distinct QNAMEs with NoError responses
	TLDs    *hll.Sketch // TLDs in NoError responses
	ESLDs   *hll.Sketch // effective SLDs in NoError responses
	QTypes  *hll.Sketch // distinct QTYPEs
	IP4s    *hll.Sketch // distinct IPv4 addresses in answers
	IP6s    *hll.Sketch // distinct IPv6 addresses in answers

	// Distributions.
	TTL    *sketch.TopValues // ANSWER record TTLs
	NSTTL  *sketch.TopValues // AUTHORITY NS TTLs
	NegTTL *sketch.TopValues // negative-caching TTLs from AUTHORITY SOAs
	Delays *sketch.Histogram // response delays [ms]
	Hops   *sketch.Histogram // inferred network hops
	Sizes  *sketch.Histogram // response sizes [B]
}

// NewSet returns an empty feature set.
func NewSet(cfg Config) *Set {
	cfg = cfg.withDefaults()
	p := cfg.HLLPrecision
	return &Set{
		cfg:     cfg,
		SrvIPs:  hll.MustNew(p),
		SrcIPs:  hll.MustNew(p),
		Sources: hll.MustNew(p),
		QNamesA: hll.MustNew(p),
		QNames:  hll.MustNew(p),
		TLDs:    hll.MustNew(p),
		ESLDs:   hll.MustNew(p),
		QTypes:  hll.MustNew(p),
		IP4s:    hll.MustNew(p),
		IP6s:    hll.MustNew(p),
		TTL:     sketch.NewTopValues(cfg.TTLTracked),
		NSTTL:   sketch.NewTopValues(cfg.TTLTracked),
		NegTTL:  sketch.NewTopValues(cfg.TTLTracked),
		Delays:  sketch.NewHistogram(cfg.DelayMaxMs, 1.15),
		Hops:    sketch.NewHistogram(64, 1.15),
		Sizes:   sketch.NewHistogram(cfg.SizeMax, 1.15),
	}
}

// Observe folds one transaction summary into the set. It consumes the
// summary's memoized field hashes — hashed once per transaction, shared
// by every aggregation × sketch — memoizing them itself when the caller
// has not (which mutates sum: engines that fan one summary out to
// concurrent Observers must call PrecomputeHashes first).
func (s *Set) Observe(sum *sie.Summary) {
	if !sum.HashesReady {
		sum.PrecomputeHashes(s.cfg.Suffixes)
	}
	s.Hits++
	s.SrvIPs.AddHash(sum.NameserverHash)
	s.SrcIPs.AddHash(sum.ResolverHash)
	s.Sources.AddUint64(uint64(sum.SensorID))
	s.QNamesA.AddHash(sum.QNameHash)
	s.QTypes.AddUint64(uint64(sum.QType))
	s.qdotsSum += float64(sum.QDots)
	if sum.TCP {
		s.TCP++
	}
	if sum.Trunc {
		s.Trunc++
	}

	if !sum.Answered {
		s.Unans++
		return
	}
	s.answered++
	s.lvlSum += float64(sum.AnswerCount)
	s.nslvlSum += float64(sum.AuthorityNS)
	s.Delays.Observe(sum.DelayMs)
	s.Hops.Observe(float64(sum.Hops))
	s.Sizes.Observe(float64(sum.RespSize))

	switch sum.RCode {
	case dnswire.RCodeNoError:
		s.OK++
	case dnswire.RCodeNXDomain:
		s.NXD++
	case dnswire.RCodeRefused:
		s.RFS++
	case dnswire.RCodeServFail:
		s.Fail++
	}
	if sum.RCode != dnswire.RCodeNoError {
		return
	}

	if sum.HasAnswerData {
		s.OKAns++
	}
	if sum.AuthorityNS > 0 {
		s.OKNS++
	}
	if sum.HasAdditional {
		s.OKAdd++
	}
	nodata := !sum.HasAnswerData && sum.AuthorityNS == 0
	if nodata {
		s.OKNil++
	}
	if sum.QType == dnswire.TypeAAAA {
		s.OK6++
		if nodata {
			s.OK6Nil++
		}
	}
	if sum.DNSSECOK && sum.HasRRSIG && (sum.HasAnswerData || sum.AuthorityNS > 0) {
		s.OKSec++
	}

	s.QNames.AddHash(sum.QNameHash)
	s.TLDs.AddHash(sum.TLDHash)
	s.ESLDs.AddHash(sum.ESLDHash)
	for _, h := range sum.V4Hashes {
		s.IP4s.AddHash(h)
	}
	for _, h := range sum.V6Hashes {
		s.IP6s.AddHash(h)
	}
	for _, ttl := range sum.AnswerTTLs {
		s.TTL.Observe(ttl)
	}
	for _, ttl := range sum.NSTTLs {
		s.NSTTL.Observe(ttl)
	}
	if sum.HasSOA {
		s.NegTTL.Observe(sum.SOAMinimum)
	}
}

// QDots returns the mean number of QNAME labels.
func (s *Set) QDots() float64 {
	if s.Hits == 0 {
		return 0
	}
	return s.qdotsSum / float64(s.Hits)
}

// Lvl returns the mean ANSWER record count per answered transaction.
func (s *Set) Lvl() float64 {
	if s.answered == 0 {
		return 0
	}
	return s.lvlSum / float64(s.answered)
}

// NSLvl returns the mean AUTHORITY NS count per answered transaction.
func (s *Set) NSLvl() float64 {
	if s.answered == 0 {
		return 0
	}
	return s.nslvlSum / float64(s.answered)
}

// Answered returns the number of answered transactions.
func (s *Set) Answered() uint64 { return s.answered }

// Reset clears all statistics for the next time window.
func (s *Set) Reset() {
	cfg := s.cfg
	*s = Set{
		cfg:     cfg,
		SrvIPs:  s.SrvIPs,
		SrcIPs:  s.SrcIPs,
		Sources: s.Sources,
		QNamesA: s.QNamesA,
		QNames:  s.QNames,
		TLDs:    s.TLDs,
		ESLDs:   s.ESLDs,
		QTypes:  s.QTypes,
		IP4s:    s.IP4s,
		IP6s:    s.IP6s,
		TTL:     s.TTL,
		NSTTL:   s.NSTTL,
		NegTTL:  s.NegTTL,
		Delays:  s.Delays,
		Hops:    s.Hops,
		Sizes:   s.Sizes,
	}
	s.SrvIPs.Reset()
	s.SrcIPs.Reset()
	s.Sources.Reset()
	s.QNamesA.Reset()
	s.QNames.Reset()
	s.TLDs.Reset()
	s.ESLDs.Reset()
	s.QTypes.Reset()
	s.IP4s.Reset()
	s.IP6s.Reset()
	s.TTL.Reset()
	s.NSTTL.Reset()
	s.NegTTL.Reset()
	s.Delays.Reset()
	s.Hops.Reset()
	s.Sizes.Reset()
}
