// Package features implements the per-object traffic statistics of paper
// §2.3: counters for RCODE and section shapes, averages for QNAME depth
// and section sizes, HyperLogLog cardinalities for name/address sets,
// top-TTL trackers and quartile histograms for delays, hops and sizes.
//
// One Set hangs off each live Space-Saving entry (as its State); Observe
// folds in a transaction summary, Snapshot extracts a Row for the TSV
// time series, and Reset clears the statistics at each window boundary
// without touching the top-k list itself (§2.4).
//
// Concurrency: a Set inherits the ownership of the cache entry it hangs
// off — single-owner, no internal locking. In the serial and parallel
// engines that owner is the pipeline goroutine; in the sharded engine it
// is the worker that owns the entry's shard, and sets never migrate
// between shards.
package features
