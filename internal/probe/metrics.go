package probe

import "dnsobservatory/internal/metrics"

// Metric family names the engine publishes. Counters are registered
// read-through (collect reads the engine atomics, the probe hot path
// pays nothing extra); only the latency histogram records eagerly.
const (
	MetricProbes      = "dnsobs_probe_probes_total"
	MetricCacheHits   = "dnsobs_probe_cache_hits_total"
	MetricCacheMisses = "dnsobs_probe_cache_misses_total"
	MetricMerged      = "dnsobs_probe_singleflight_merged_total"
	MetricRetries     = "dnsobs_probe_retries_total"
	MetricWireQueries = "dnsobs_probe_wire_queries_total"
	MetricTCPRetries  = "dnsobs_probe_tcp_retries_total"
	MetricInflight    = "dnsobs_probe_inflight"
	MetricSeconds     = "dnsobs_probe_seconds"
)

// probeLatencyBounds bucket the modeled resolution latency: sub-ms
// cache hits through multi-second retry chains.
var probeLatencyBounds = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5,
}

// instrument registers the dnsobs_probe_* families, labeled with the
// engine name so several engines (tests, probe + verify planes) can
// share a registry. Re-instrumenting under the same name replaces the
// previous engine's slots.
func (e *Engine) instrument(reg *metrics.Registry) {
	n := e.cfg.Name
	outcomes := []struct {
		outcome string
		read    func() uint64
	}{
		{"issued", e.issued.Load},
		{"answered", e.answered.Load},
		{"timeout", e.timeouts.Load},
		{"rate_limited", e.rateLimited.Load},
		{"merged", e.merged.Load},
	}
	for _, o := range outcomes {
		reg.CounterFunc(MetricProbes, "probes by final outcome (issued counts submissions)",
			o.read, "engine", n, "outcome", o.outcome)
	}
	reg.CounterFunc(MetricCacheHits, "probes served from the NS cache",
		e.cacheHits.Load, "engine", n, "kind", "positive")
	reg.CounterFunc(MetricCacheHits, "probes served from the NS cache",
		e.negHits.Load, "engine", n, "kind", "negative")
	reg.CounterFunc(MetricCacheMisses, "probes that walked the hierarchy",
		e.cacheMisses.Load, "engine", n)
	reg.CounterFunc(MetricMerged, "duplicate in-flight probes collapsed by singleflight",
		e.merged.Load, "engine", n)
	reg.CounterFunc(MetricRetries, "retry attempts after timeout or SERVFAIL",
		e.retries.Load, "engine", n, "reason", "all")
	reg.CounterFunc(MetricRetries, "retry attempts after timeout or SERVFAIL",
		e.sfRetries.Load, "engine", n, "reason", "servfail")
	reg.CounterFunc(MetricWireQueries, "DNS queries put on the wire",
		e.wireQueries.Load, "engine", n)
	reg.CounterFunc(MetricTCPRetries, "truncated UDP answers retried over TCP",
		e.tcpRetries.Load, "engine", n)
	reg.GaugeFunc(MetricInflight, "probes currently being resolved",
		func() float64 { return float64(e.inflight.Load()) }, "engine", n)
	e.seconds = reg.Histogram(MetricSeconds, "modeled resolution latency of answered probes",
		probeLatencyBounds, "engine", n)
}
