package probe

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/transport"
	"dnsobservatory/internal/tsv"
)

// ingestAll replays a transaction stream through the dnsobs ingest
// contract, mirroring the transport golden test: summarize, serial
// pipeline, snapshots into a TSV store, flush, cascade.
func ingestAll(t *testing.T, dir string, next func(*sie.Transaction) error) []string {
	t.Helper()
	store, err := tsv.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	aggs := observatory.StandardAggregations(0.01)
	var aggNames []string
	for _, a := range aggs {
		aggNames = append(aggNames, a.Name)
	}
	var lastStart int64 = -1
	pipe := observatory.New(observatory.DefaultConfig(), aggs, func(s *tsv.Snapshot) {
		if err := store.Put(s); err != nil {
			t.Error(err)
		}
		lastStart = s.Start
	})
	var summarizer sie.Summarizer
	summarizer.KeepUnparsableResponses = true
	var tx sie.Transaction
	var sum sie.Summary
	var base time.Time
	for {
		err := next(&tx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := summarizer.Summarize(&tx, &sum); err != nil {
			pipe.RecordRejected()
			continue
		}
		if base.IsZero() {
			base = tx.QueryTime.Truncate(time.Minute)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(base).Seconds())
	}
	pipe.Flush()
	if err := store.CascadeAll(aggNames, lastStart+60); err != nil {
		t.Fatal(err)
	}
	return aggNames
}

// storeDigests hashes every file under a store directory.
func storeDigests(t *testing.T, dir string) map[string][32]byte {
	t.Helper()
	out := map[string][32]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = sha256.Sum256(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestProbeFedGoldenStore closes the active-measurement loop: the
// transaction stream a probe sweep emits produces byte-identical store
// contents whether it is ingested directly or shipped sensor→TCP→
// collector first — the probe plane feeds the passive pipeline as just
// another sensor.
func TestProbeFedGoldenStore(t *testing.T) {
	sim, auth := testAuthority(t, 120)

	// A deterministic clock that marches 40ms per reading spreads the
	// sweep across several minute windows, so the cascade has real work.
	var clockMu sync.Mutex
	now := time.Unix(1600000000, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		now = now.Add(40 * time.Millisecond)
		return now
	}

	// Sweep the population, capturing every wire exchange. Packets alias
	// worker scratch buffers, so the capture clones them.
	var stream bytes.Buffer
	w := sie.NewWriter(&stream)
	var captured int
	e := New(Config{
		Exchanger:     auth,
		Roots:         auth.RootAddrs(),
		Workers:       8,
		Timeout:       5 * time.Second,
		AuthRate:      -1,
		HierarchyRate: -1,
		Seed:          3,
		Now:           clock,
		OnTransaction: func(tx *sie.Transaction) {
			cp := *tx
			cp.QueryPacket = append([]byte(nil), tx.QueryPacket...)
			cp.ResponsePacket = append([]byte(nil), tx.ResponsePacket...)
			if err := w.Write(&cp); err != nil {
				t.Error(err)
			}
			captured++
		},
	})
	submitted := 0
	for _, zone := range sim.Universe.SLDs {
		for i, f := range zone.FQDNs {
			if i >= 2 {
				break
			}
			if err := e.Submit(Target{QName: f.Name, QType: dnswire.TypeA}); err != nil {
				t.Fatal(err)
			}
			submitted++
		}
	}
	for i := 0; i < 40; i++ {
		if err := e.Submit(Target{QName: fmt.Sprintf("golden-ghost-%d.com.", i), QType: dnswire.TypeA}); err != nil {
			t.Fatal(err)
		}
		submitted++
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if captured < submitted {
		t.Fatalf("captured %d transactions for %d probes", captured, submitted)
	}

	// Path A: ingest the captured stream directly.
	dirDirect := t.TempDir()
	rd := sie.NewReader(bytes.NewReader(stream.Bytes()))
	ingestAll(t, dirDirect, rd.Read)

	// Path B: replay the same stream through sensor→TCP→collector.
	dirNet := t.TempDir()
	ln, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll := transport.NewCollector(transport.CollectorConfig{})
	go coll.Serve(ln)
	sendErr := make(chan error, 1)
	go func() {
		s := transport.NewSensor(transport.SensorConfig{Addr: ln.Addr().String(), Name: "probe-golden"})
		rd := sie.NewReader(bytes.NewReader(stream.Bytes()))
		var tx sie.Transaction
		for {
			err := rd.Read(&tx)
			if err == io.EOF {
				break
			}
			if err == nil {
				err = s.Write(&tx)
			}
			if err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- s.Close()
	}()
	go func() {
		if err := <-sendErr; err != nil {
			t.Error(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for coll.Stats().Frames < uint64(captured) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		coll.Close()
	}()
	aggNames := ingestAll(t, dirNet, func(tx *sie.Transaction) error {
		rx, ok := <-coll.C()
		if !ok {
			return io.EOF
		}
		*tx = *rx
		return nil
	})

	direct := storeDigests(t, dirDirect)
	networked := storeDigests(t, dirNet)
	if len(direct) == 0 {
		t.Fatal("direct path produced no snapshot files")
	}
	if len(direct) < len(aggNames) {
		t.Fatalf("only %d files for %d aggregations", len(direct), len(aggNames))
	}
	if len(direct) != len(networked) {
		t.Fatalf("file count differs: direct %d, networked %d", len(direct), len(networked))
	}
	for rel, sum := range direct {
		nsum, ok := networked[rel]
		if !ok {
			t.Errorf("networked store is missing %s", rel)
			continue
		}
		if sum != nsum {
			t.Errorf("%s differs between direct and probe-fed ingest", rel)
		}
	}
}
