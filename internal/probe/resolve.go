package probe

import (
	"errors"
	"net/netip"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/sie"
)

// Sentinel errors threaded through the exchange path.
var (
	errRateLimited = errors.New("probe: rate limited")
	errLateReply   = errors.New("probe: reply after timeout")
)

// resolve runs one full iterative resolution: cache lookup, then a
// root→TLD→authoritative referral walk, querying with per-exchange
// retries and recording everything it learns back into the cache.
func (e *Engine) resolve(w *worker, t Target) *Result {
	res := &Result{QName: t.QName, QType: t.QType}
	now := e.cfg.Now()

	// Start from the deepest cached delegation; the roots otherwise.
	servers := e.cfg.Roots
	curZone := "" // "" = the root zone
	if !e.cfg.DisableCache {
		if zone, srvs, neg, ok := e.cache.Lookup(t.QName, now); ok {
			if neg {
				e.cacheHits.Add(1)
				e.negHits.Add(1)
				res.Outcome = OutcomeAnswered
				res.RCode = dnswire.RCodeNXDomain
				res.CacheHit = true
				res.NegCacheHit = true
				return res
			}
			servers, curZone = srvs, zone
			// A hit below the public-suffix level skips the whole
			// hierarchy walk; a TLD-level entry only saves the root and
			// counts as a miss for the hit-rate accounting.
			if !e.isHierZone(zone) {
				e.cacheHits.Add(1)
				res.CacheHit = true
			} else {
				e.cacheMisses.Add(1)
			}
		} else {
			e.cacheMisses.Add(1)
		}
	} else {
		e.cacheMisses.Add(1)
	}

	for depth := 0; depth < maxReferralDepth; depth++ {
		m, srv, err := e.query(w, res, servers, t.QName, t.QType, e.isHierZone(curZone))
		if err != nil {
			if errors.Is(err, errRateLimited) {
				res.Outcome = OutcomeRateLimited
			} else {
				res.Outcome = OutcomeTimeout
			}
			return res
		}

		if zone, glue, ttl, ok := referral(m); ok {
			if !e.cfg.DisableCache {
				e.cache.Put(zone, glue, ttl, e.cfg.Now())
			}
			servers, curZone = glue, zone
			continue
		}

		// Terminal response: fill the result from it.
		res.Outcome = OutcomeAnswered
		res.Server = srv
		res.RCode = m.Flags.RCode
		if m.Flags.RCode == dnswire.RCodeNXDomain {
			if ttl, ok := soaMinimum(m); ok && !e.cfg.DisableCache {
				// RFC 2308: cache the denial. A hierarchy server
				// denying the name means the whole registered domain is
				// unregistered; a leaf denial covers just this qname.
				key := t.QName
				if e.isHierZone(curZone) {
					key = e.cfg.Suffixes.ESLD(t.QName)
				}
				if key != "" {
					e.cache.PutNegative(key, ttl, e.cfg.Now())
				}
			}
			return res
		}
		for _, rr := range m.Answers {
			switch data := rr.Data.(type) {
			case dnswire.ARData:
				res.Addrs = append(res.Addrs, data.Addr)
			case dnswire.AAAARData:
				res.Addrs = append(res.Addrs, data.Addr)
			}
			if res.TTL == 0 {
				res.TTL = rr.TTL
			}
		}
		return res
	}
	// Referral loop without a terminal answer: account it with the
	// timeouts so the outcome identity stays exact.
	res.Outcome = OutcomeTimeout
	return res
}

// isHierZone reports whether zone is the root or a public suffix —
// i.e. whether its servers are shared infrastructure that gets the
// stricter rate limit.
func (e *Engine) isHierZone(zone string) bool {
	return zone == "" || zone == "." || e.cfg.Suffixes.ETLD(zone) == zone
}

// referral recognizes a delegation response: no answers, not
// authoritative, NS records in AUTHORITY. It returns the delegated
// zone apex, the glue addresses, and the NS TTL.
func referral(m *dnswire.Message) (zone string, glue []netip.Addr, ttl uint32, ok bool) {
	if m.Flags.Authoritative || m.Flags.RCode != dnswire.RCodeNoError || len(m.Answers) != 0 {
		return "", nil, 0, false
	}
	for _, rr := range m.Authority {
		if rr.Type == dnswire.TypeNS {
			zone = rr.Name
			ttl = rr.TTL
			break
		}
	}
	if zone == "" {
		return "", nil, 0, false
	}
	for _, rr := range m.Additional {
		if data, isA := rr.Data.(dnswire.ARData); isA {
			glue = append(glue, data.Addr)
		}
	}
	if len(glue) == 0 {
		return "", nil, 0, false
	}
	return zone, glue, ttl, true
}

// soaMinimum extracts the negative-caching TTL from the AUTHORITY SOA.
func soaMinimum(m *dnswire.Message) (uint32, bool) {
	for _, rr := range m.Authority {
		if rr.Type == dnswire.TypeSOA {
			if soa, ok := rr.Data.(dnswire.SOARData); ok {
				return soa.Minimum, true
			}
		}
	}
	return 0, false
}

// query asks one question with the engine's retry policy: up to
// 1+Retries attempts, each against a rotated server, with jittered
// exponential backoff between attempts. A truncated UDP reply retries
// immediately over TCP without consuming an attempt.
func (e *Engine) query(w *worker, res *Result, servers []netip.Addr, qname string, qtype dnswire.Type, hier bool) (*dnswire.Message, netip.Addr, error) {
	rate, burst := e.cfg.AuthRate, e.cfg.AuthRate/50
	if hier {
		rate, burst = e.cfg.HierarchyRate, e.cfg.HierarchyRate/50
	}
	if burst < 4 {
		burst = 4
	}
	attempts := 1 + e.cfg.Retries
	start := w.rng.Intn(len(servers))
	var lastErr error
	for i := 0; i < attempts; i++ {
		srv := servers[(start+i)%len(servers)]
		if wait, ok := e.rl.acquire(srv, rate, burst, e.cfg.MaxRateWait, e.cfg.Now()); !ok {
			return nil, srv, errRateLimited
		} else if wait > 0 {
			time.Sleep(wait)
		}
		if i > 0 {
			e.retries.Add(1)
			res.Retries++
			e.backoff(w, i)
		}
		m, rtt, err := w.exchange(srv, qname, qtype, false)
		if err != nil {
			res.Latency += e.cfg.Timeout
			lastErr = err
			continue
		}
		res.Latency += rtt
		if m.Flags.Truncated {
			// Oversize answer: the server wants TCP. One immediate
			// retry over a TCP frame, same server, no backoff.
			e.tcpRetries.Add(1)
			res.TCPRetried = true
			if m, rtt, err = w.exchange(srv, qname, qtype, true); err != nil {
				res.Latency += e.cfg.Timeout
				lastErr = err
				continue
			}
			res.Latency += rtt
		}
		if m.Flags.RCode == dnswire.RCodeServFail && i+1 < attempts {
			e.sfRetries.Add(1)
			lastErr = nil
			continue
		}
		return m, srv, nil
	}
	if lastErr == nil {
		lastErr = errLateReply
	}
	return nil, netip.Addr{}, lastErr
}

// backoff sleeps the jittered exponential delay before retry i (1-based).
func (e *Engine) backoff(w *worker, i int) {
	d := e.cfg.BackoffMin << (i - 1)
	if d > e.cfg.BackoffMax {
		d = e.cfg.BackoffMax
	}
	// ±50 % jitter decorrelates retry storms across workers.
	d = d/2 + time.Duration(w.rng.Int63n(int64(d)))
	time.Sleep(d)
}

// exchange puts one query on the wire: build, frame, exchange, emit the
// transaction, parse the reply. The returned message aliases w's
// scratch buffers — the caller must extract what it needs before the
// worker's next exchange.
func (w *worker) exchange(srv netip.Addr, qname string, qtype dnswire.Type, tcp bool) (*dnswire.Message, time.Duration, error) {
	e := w.e
	w.q.Reset()
	w.q.ID = uint16(w.rng.Intn(1 << 16))
	w.q.Questions = append(w.q.Questions, dnswire.Question{
		Name: qname, Type: qtype, Class: dnswire.ClassINET})
	w.q.SetEDNS(4096, false)
	var err error
	if w.qbuf, err = w.q.Pack(w.qbuf[:0]); err != nil {
		return nil, 0, err
	}
	sport := uint16(1024 + w.rng.Intn(60000))
	if tcp {
		w.pbuf = ipwire.AppendIPv4TCPDNS(w.pbuf[:0], e.cfg.LocalAddr, srv, sport, ipwire.DNSPort, 64, w.rng.Uint32(), w.qbuf)
	} else {
		w.pbuf = ipwire.AppendIPv4UDP(w.pbuf[:0], e.cfg.LocalAddr, srv, sport, ipwire.DNSPort, 64, w.qbuf)
	}
	qt := e.cfg.Now()
	e.wireQueries.Add(1)
	resp, rtt, err := e.cfg.Exchanger.Exchange(w.pbuf)
	if err != nil || rtt > e.cfg.Timeout {
		// Lost or late: what a sensor sees is an unanswered query.
		w.tx = sie.Transaction{QueryPacket: w.pbuf, QueryTime: qt, SensorID: e.cfg.SensorID}
		e.emitTx(&w.tx)
		if err == nil {
			err = errLateReply
		}
		return nil, 0, err
	}
	w.tx = sie.Transaction{
		QueryPacket:    w.pbuf,
		ResponsePacket: resp,
		QueryTime:      qt,
		ResponseTime:   qt.Add(rtt),
		SensorID:       e.cfg.SensorID,
	}
	e.emitTx(&w.tx)
	pkt, _, err := ipwire.DecodeAny(resp)
	if err != nil {
		return nil, 0, err
	}
	w.r.Reset()
	if err := w.r.Unpack(pkt.Payload); err != nil {
		return nil, 0, err
	}
	return &w.r, rtt, nil
}
