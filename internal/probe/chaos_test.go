package probe

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dnsobservatory/internal/chaos"
	"dnsobservatory/internal/dnswire"
)

// holdExchanger adds a small wall-clock hold in front of an exchanger
// so singleflight leaders stay in flight long enough for duplicates to
// pile onto them even on a fast machine.
type holdExchanger struct {
	hold time.Duration
	x    Exchanger
}

func (h *holdExchanger) Exchange(query []byte) ([]byte, time.Duration, error) {
	time.Sleep(h.hold)
	return h.x.Exchange(query)
}

// TestProbeChaosSoak drives the engine through a faulty probe path —
// lost, late, SERVFAIL'd and truncated replies all at once — and then
// holds the engine to its own accounting: every submitted probe ends in
// exactly one outcome bucket, and the retry/backoff machinery visibly
// absorbed the injected faults. Run under -race in CI, this is also the
// concurrency soak for the cache, singleflight and limiter shards.
func TestProbeChaosSoak(t *testing.T) {
	sim, auth := testAuthority(t, 150)
	inj := chaos.New(chaos.Config{
		Seed:              7,
		ProbeLossRate:     0.04,
		ProbeDelayRate:    0.03,
		ProbeServFailRate: 0.03,
		ProbeTruncateRate: 0.05,
		ProbeDelay:        10 * time.Second, // past Timeout: delays become retries
	})
	var mu sync.Mutex
	outcomes := map[Outcome]int{}
	e := New(Config{
		Exchanger:     inj.WrapExchanger(&holdExchanger{hold: 100 * time.Microsecond, x: auth}),
		Roots:         auth.RootAddrs(),
		Workers:       64,
		Timeout:       5 * time.Second,
		Retries:       2,
		BackoffMin:    time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
		AuthRate:      -1,
		HierarchyRate: -1,
		Seed:          7,
		OnResult: func(r *Result) {
			mu.Lock()
			outcomes[r.Outcome]++
			mu.Unlock()
		},
	})

	submitted := 0
	submit := func(qname string) {
		t.Helper()
		if err := e.Submit(Target{QName: qname, QType: dnswire.TypeA, Priority: submitted % 3}); err != nil {
			t.Fatal(err)
		}
		submitted++
	}
	// Real hostnames, twice each so duplicates race their originals.
	for _, zone := range sim.Universe.SLDs {
		for _, f := range zone.FQDNs {
			submit(f.Name)
			submit(f.Name)
		}
	}
	// Bursts of one hot name: guaranteed singleflight pressure.
	rounds := 0
	for _, zone := range sim.Universe.SLDs {
		if len(zone.FQDNs) == 0 {
			continue
		}
		for i := 0; i < 64; i++ {
			submit(zone.FQDNs[0].Name)
		}
		if rounds++; rounds == 4 {
			break
		}
	}
	// Nonexistent domains exercise the negative-cache path under fire.
	for i := 0; i < 100; i++ {
		submit(fmt.Sprintf("soak-ghost-%d.com.", i%25))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	st := e.Status()
	checkIdentity(t, st)
	if st.Issued != uint64(submitted) {
		t.Fatalf("issued %d != submitted %d", st.Issued, submitted)
	}
	mu.Lock()
	observed := outcomes[OutcomeAnswered] + outcomes[OutcomeTimeout] +
		outcomes[OutcomeRateLimited] + outcomes[OutcomeMerged]
	mu.Unlock()
	if observed != submitted {
		t.Fatalf("observer saw %d results for %d probes", observed, submitted)
	}

	// The faults must have left visible marks in the accounting.
	if st.Answered == 0 {
		t.Fatal("nothing answered under chaos")
	}
	if st.Retries == 0 {
		t.Fatal("no retries despite lost and late replies")
	}
	if st.TCPRetries == 0 {
		t.Fatal("no TCP retries despite truncated replies")
	}
	if st.Merged == 0 {
		t.Fatal("no singleflight merges despite duplicate bursts")
	}
	if st.ServFailRetries == 0 {
		t.Fatal("no SERVFAIL retries despite injected SERVFAILs")
	}
	if st.CacheHits == 0 || st.NegativeHits == 0 {
		t.Fatalf("cache idle under soak: hits=%d neg=%d", st.CacheHits, st.NegativeHits)
	}
	cs := inj.Stats()
	if cs.ProbeLost == 0 || cs.ProbeDelayed == 0 || cs.ProbeServFails == 0 || cs.ProbeTruncated == 0 {
		t.Fatalf("injector idle: %+v", cs)
	}
}
