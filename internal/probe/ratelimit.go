package probe

import (
	"net/netip"
	"sync"
	"time"
)

// rlShards spreads the per-nameserver buckets; 16 suffices because
// each shard holds many buckets and the critical section is a few
// float operations.
const rlShards = 16

// rateLimiter holds one token bucket per nameserver address. Buckets
// are created on first use with the rate the caller passes — the
// resolver passes the hierarchy rate for root/TLD servers and the
// (higher) leaf rate for zone authoritatives, mirroring ZDNS's
// politeness toward shared infrastructure.
type rateLimiter struct {
	shards [rlShards]rlShard
}

type rlShard struct {
	mu sync.Mutex
	m  map[netip.Addr]*bucket
}

// bucket is a reservation-style token bucket: acquire always consumes a
// token and reports how long the caller must wait for it, unless the
// wait would exceed the caller's patience, in which case the token is
// returned and the probe is dropped as rate-limited.
type bucket struct {
	tokens float64 // may go negative: reserved ahead
	last   time.Time
	rate   float64 // tokens per second
	burst  float64
}

// hashAddr hashes an address without allocating.
func hashAddr(addr netip.Addr) uint64 {
	a := addr.As16()
	h := uint64(14695981039346656037)
	for _, b := range a {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

func newRateLimiter() *rateLimiter {
	rl := &rateLimiter{}
	for i := range rl.shards {
		rl.shards[i].m = make(map[netip.Addr]*bucket)
	}
	return rl
}

// acquire reserves one query slot at addr. It returns the time the
// caller must sleep before sending (0 when a token is free), or
// ok=false when the next slot is further than maxWait away.
func (rl *rateLimiter) acquire(addr netip.Addr, rate, burst float64, maxWait time.Duration, now time.Time) (wait time.Duration, ok bool) {
	if rate <= 0 {
		return 0, true
	}
	sh := &rl.shards[hashAddr(addr)&(rlShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, exists := sh.m[addr]
	if !exists {
		b = &bucket{tokens: burst, last: now, rate: rate, burst: burst}
		sh.m[addr] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	b.tokens--
	if b.tokens >= 0 {
		return 0, true
	}
	wait = time.Duration(-b.tokens / b.rate * float64(time.Second))
	if wait > maxWait {
		b.tokens++ // give the reservation back
		return 0, false
	}
	return wait, true
}
