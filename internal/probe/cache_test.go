package probe

import (
	"net/netip"
	"testing"
	"time"
)

func addrs(bs ...byte) []netip.Addr {
	var out []netip.Addr
	for _, b := range bs {
		out = append(out, netip.AddrFrom4([4]byte{192, 0, 2, b}))
	}
	return out
}

func TestNSCacheTTLExpiry(t *testing.T) {
	c := newNSCache()
	t0 := time.Unix(1000, 0)
	c.Put("example.com.", addrs(1, 2), 300, t0)

	zone, srvs, neg, ok := c.Lookup("www.example.com.", t0.Add(299*time.Second))
	if !ok || neg || zone != "example.com." || len(srvs) != 2 {
		t.Fatalf("live entry: ok=%v neg=%v zone=%q srvs=%v", ok, neg, zone, srvs)
	}
	// The boundary instant is still valid; one second past is not.
	if _, _, _, ok := c.Lookup("www.example.com.", t0.Add(300*time.Second)); !ok {
		t.Fatal("entry expired at exactly TTL")
	}
	if _, _, _, ok := c.Lookup("www.example.com.", t0.Add(301*time.Second)); ok {
		t.Fatal("entry survived past TTL")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry not evicted: Len=%d", c.Len())
	}
}

func TestNSCacheDeepestSuffixWins(t *testing.T) {
	c := newNSCache()
	t0 := time.Unix(1000, 0)
	c.Put("com.", addrs(1), 1000, t0)
	c.Put("example.com.", addrs(2), 1000, t0)

	zone, srvs, _, ok := c.Lookup("www.example.com.", t0)
	if !ok || zone != "example.com." || srvs[0] != addrs(2)[0] {
		t.Fatalf("wanted the deeper zone, got %q %v", zone, srvs)
	}
	// A name in another zone falls back to the TLD entry.
	zone, _, _, ok = c.Lookup("www.other.com.", t0)
	if !ok || zone != "com." {
		t.Fatalf("wanted TLD fallback, got ok=%v zone=%q", ok, zone)
	}
	// An exact-match lookup works too.
	zone, _, _, ok = c.Lookup("example.com.", t0)
	if !ok || zone != "example.com." {
		t.Fatalf("exact lookup: ok=%v zone=%q", ok, zone)
	}
}

func TestNSCacheNegative(t *testing.T) {
	c := newNSCache()
	t0 := time.Unix(1000, 0)
	c.PutNegative("gone.com.", 60, t0)

	// The denial covers the name and everything under it (the
	// registered domain does not exist, so no child can).
	for _, q := range []string{"gone.com.", "www.gone.com.", "a.b.gone.com."} {
		zone, _, neg, ok := c.Lookup(q, t0)
		if !ok || !neg || zone != "gone.com." {
			t.Fatalf("lookup %q: ok=%v neg=%v zone=%q", q, ok, neg, zone)
		}
	}
	if _, _, _, ok := c.Lookup("alive.com.", t0); ok {
		t.Fatal("negative entry leaked to a sibling")
	}
	// RFC 2308: denials expire like anything else.
	if _, _, _, ok := c.Lookup("www.gone.com.", t0.Add(61*time.Second)); ok {
		t.Fatal("negative entry survived past the SOA minimum")
	}
}

func TestNSCachePutCopiesServers(t *testing.T) {
	c := newNSCache()
	t0 := time.Unix(1000, 0)
	src := addrs(1, 2)
	c.Put("x.com.", src, 100, t0)
	src[0] = netip.AddrFrom4([4]byte{10, 0, 0, 1}) // caller reuses its slice
	_, srvs, _, _ := c.Lookup("x.com.", t0)
	if srvs[0] != addrs(1)[0] {
		t.Fatal("cache aliases the caller's slice")
	}
}

func TestRateLimiterReservations(t *testing.T) {
	rl := newRateLimiter()
	addr := netip.AddrFrom4([4]byte{192, 0, 2, 1})
	t0 := time.Unix(1000, 0)
	near := func(got, want time.Duration) bool {
		d := got - want
		return d > -time.Millisecond && d < time.Millisecond
	}

	// Burst tokens are free; the next reservation must wait 1/rate.
	for i := 0; i < 4; i++ {
		if wait, ok := rl.acquire(addr, 10, 4, time.Second, t0); !ok || wait != 0 {
			t.Fatalf("burst token %d: wait=%v ok=%v", i, wait, ok)
		}
	}
	wait, ok := rl.acquire(addr, 10, 4, time.Second, t0)
	if !ok || !near(wait, 100*time.Millisecond) {
		t.Fatalf("first reservation: wait=%v ok=%v", wait, ok)
	}
	// Beyond the caller's patience the token is refused — and returned,
	// so the next caller waits no longer than this one would have.
	if _, ok := rl.acquire(addr, 10, 4, 150*time.Millisecond, t0); ok {
		t.Fatal("over-patience reservation granted")
	}
	wait, ok = rl.acquire(addr, 10, 4, time.Second, t0)
	if !ok || !near(wait, 200*time.Millisecond) {
		t.Fatalf("token not returned on refusal: wait=%v ok=%v", wait, ok)
	}
	// Refill: after a second the bucket is full again.
	if wait, ok := rl.acquire(addr, 10, 4, time.Second, t0.Add(time.Second)); !ok || wait != 0 {
		t.Fatalf("refill: wait=%v ok=%v", wait, ok)
	}
	// Unlimited rate never waits.
	if wait, ok := rl.acquire(addr, -1, 0, 0, t0); !ok || wait != 0 {
		t.Fatalf("unlimited: wait=%v ok=%v", wait, ok)
	}
}

func TestProbeQueuePriorityAndClose(t *testing.T) {
	q := newProbeQueue(16)
	q.push(Target{QName: "low.", Priority: 2})
	q.push(Target{QName: "mid.", Priority: 1})
	q.push(Target{QName: "high.", Priority: 0})
	q.push(Target{QName: "clamped.", Priority: 99}) // clamps to band 2

	want := []string{"high.", "mid.", "low.", "clamped."}
	for _, w := range want {
		tgt, ok := q.pop()
		if !ok || tgt.QName != w {
			t.Fatalf("pop: got %q ok=%v, want %q", tgt.QName, ok, w)
		}
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("pop succeeded on a closed empty queue")
	}
	if q.push(Target{QName: "late."}) {
		t.Fatal("push succeeded after close")
	}
}
