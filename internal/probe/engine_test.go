package probe

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/simnet"
)

// testAuthority builds a small frozen population for probing.
func testAuthority(tb testing.TB, slds int) (*simnet.Sim, *simnet.Authority) {
	tb.Helper()
	cfg := simnet.DefaultConfig()
	cfg.SLDs = slds
	cfg.Resolvers = 1
	cfg.Sensors = 1
	cfg.QPS = 1
	cfg.Duration = 1
	cfg.ColdCaches = true
	sim := simnet.New(cfg)
	return sim, simnet.NewAuthority(sim, simnet.AuthorityConfig{})
}

// stubAddr is the answer the stub exchanger hands out for every name.
var stubAddr = netip.AddrFrom4([4]byte{203, 0, 113, 7})

// stubExchanger is a single fake authoritative: it answers every
// question with one A record, optionally truncating UDP replies to
// force the TCP retry, optionally holding each exchange open so
// singleflight leaders stay in flight.
type stubExchanger struct {
	hold     time.Duration // wall-clock sleep per exchange
	rtt      time.Duration // modeled rtt reported (default 1ms)
	truncUDP bool          // UDP gets TC+empty, TCP gets the answer

	mu   sync.Mutex
	wire map[string]int // qname -> wire queries seen
}

func (st *stubExchanger) wireCount(name string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.wire[name]
}

func (st *stubExchanger) Exchange(query []byte) ([]byte, time.Duration, error) {
	pkt, isTCP, err := ipwire.DecodeAny(query)
	if err != nil {
		return nil, 0, err
	}
	var q dnswire.Message
	if err := q.Unpack(pkt.Payload); err != nil {
		return nil, 0, err
	}
	question := q.Question()
	st.mu.Lock()
	if st.wire == nil {
		st.wire = map[string]int{}
	}
	st.wire[question.Name]++
	st.mu.Unlock()
	if st.hold > 0 {
		time.Sleep(st.hold)
	}

	m := dnswire.Message{
		ID:        q.ID,
		Flags:     dnswire.Flags{Response: true, Authoritative: true},
		Questions: []dnswire.Question{question},
	}
	if st.truncUDP && !isTCP {
		m.Flags.Truncated = true
	} else {
		m.Answers = append(m.Answers, dnswire.RR{
			Name: question.Name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 60,
			Data: dnswire.ARData{Addr: stubAddr},
		})
	}
	wire, err := m.Pack(nil)
	if err != nil {
		return nil, 0, err
	}
	var resp []byte
	if isTCP {
		resp = ipwire.AppendIPv4TCPDNS(nil, pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, 64, 1, wire)
	} else {
		resp = ipwire.AppendIPv4UDP(nil, pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, 64, wire)
	}
	rtt := st.rtt
	if rtt == 0 {
		rtt = time.Millisecond
	}
	return resp, rtt, nil
}

// stubRoots is the priming set stub-exchanger engines use.
func stubRoots() []netip.Addr {
	return []netip.Addr{netip.AddrFrom4([4]byte{192, 0, 2, 53})}
}

// checkIdentity asserts the outcome accounting identity after Close.
func checkIdentity(t *testing.T, st Status) {
	t.Helper()
	if st.Issued != st.Answered+st.Timeouts+st.RateLimited+st.Merged {
		t.Fatalf("accounting identity broken: issued=%d answered=%d timeouts=%d rate_limited=%d merged=%d",
			st.Issued, st.Answered, st.Timeouts, st.RateLimited, st.Merged)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("engine not drained: inflight=%d queued=%d", st.Inflight, st.Queued)
	}
}

func TestProbeEndToEnd(t *testing.T) {
	sim, auth := testAuthority(t, 120)

	type expect struct {
		qname string
		addr  netip.Addr
	}
	var targets []expect
	for _, zone := range sim.Universe.SLDs {
		if len(targets) >= 200 {
			break
		}
		for i, f := range zone.FQDNs {
			if i >= 2 {
				break
			}
			targets = append(targets, expect{f.Name, zone.AddrFor(f, false)})
		}
	}
	if len(targets) < 100 {
		t.Fatalf("population too small: %d targets", len(targets))
	}

	reg := metrics.NewRegistry()
	var mu sync.Mutex
	got := map[string]Result{}
	e := New(Config{
		Exchanger:     auth,
		Roots:         auth.RootAddrs(),
		Workers:       32,
		Timeout:       5 * time.Second,
		AuthRate:      -1,
		HierarchyRate: -1,
		Seed:          1,
		Metrics:       reg,
		OnResult: func(r *Result) {
			mu.Lock()
			got[r.QName] = *r
			mu.Unlock()
		},
	})
	for _, tgt := range targets {
		if err := e.Submit(Target{QName: tgt.qname, QType: dnswire.TypeA}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	st := e.Status()
	checkIdentity(t, st)
	if st.Answered != uint64(len(targets)) {
		t.Fatalf("answered %d of %d: %+v", st.Answered, len(targets), st)
	}
	for _, tgt := range targets {
		r, ok := got[tgt.qname]
		if !ok {
			t.Fatalf("no result for %s", tgt.qname)
		}
		if r.Outcome != OutcomeAnswered || r.RCode != dnswire.RCodeNoError {
			t.Fatalf("%s: outcome=%s rcode=%s", tgt.qname, r.Outcome, r.RCode)
		}
		if len(r.Addrs) != 1 || r.Addrs[0] != tgt.addr {
			t.Fatalf("%s: addrs=%v want %v", tgt.qname, r.Addrs, tgt.addr)
		}
		if r.Latency <= 0 {
			t.Fatalf("%s: no modeled latency", tgt.qname)
		}
	}
	// Two hostnames per zone means the second ride the cached
	// delegation: strictly fewer wire queries than a full cold walk.
	if st.CacheHits == 0 {
		t.Fatal("no cache hits across sibling hostnames")
	}
	if st.WireQueries >= 3*st.Issued {
		t.Fatalf("cache saved nothing: %d wire queries for %d probes", st.WireQueries, st.Issued)
	}
	// The read-through metrics see the same counters.
	if n := reg.SumCounter(MetricWireQueries); n != st.WireQueries {
		t.Fatalf("metrics wire queries %d != status %d", n, st.WireQueries)
	}
	if n := reg.SumCounter(MetricProbes); n != st.Issued+st.Answered {
		t.Fatalf("metrics probes %d != issued+answered %d", n, st.Issued+st.Answered)
	}
}

func TestProbeSingleflight(t *testing.T) {
	st := &stubExchanger{hold: 100 * time.Millisecond}
	var mu sync.Mutex
	var results []Result
	e := New(Config{
		Exchanger:     st,
		Roots:         stubRoots(),
		Workers:       16,
		AuthRate:      -1,
		HierarchyRate: -1,
		Seed:          1,
		OnResult: func(r *Result) {
			mu.Lock()
			results = append(results, *r)
			mu.Unlock()
		},
	})
	const dups = 16
	for i := 0; i < dups; i++ {
		if err := e.Submit(Target{QName: "dup.example.com.", QType: dnswire.TypeA}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	status := e.Status()
	checkIdentity(t, status)
	// All 16 workers pop immediately and the leader holds the wire for
	// 100ms, so exactly one wire query happens and the rest merge.
	if n := st.wireCount("dup.example.com."); n != 1 {
		t.Fatalf("%d wire queries for %d identical probes", n, dups)
	}
	if status.Answered != 1 || status.Merged != dups-1 {
		t.Fatalf("answered=%d merged=%d, want 1/%d", status.Answered, status.Merged, dups-1)
	}
	if len(results) != dups {
		t.Fatalf("observer saw %d results", len(results))
	}
	for _, r := range results {
		if len(r.Addrs) != 1 || r.Addrs[0] != stubAddr {
			t.Fatalf("follower answer diverged: %v", r.Addrs)
		}
		if r.Outcome == OutcomeMerged && r.WireQueries != 0 {
			t.Fatalf("merged result claims %d wire queries", r.WireQueries)
		}
	}
}

func TestProbeSingleflightDisabled(t *testing.T) {
	st := &stubExchanger{hold: 10 * time.Millisecond}
	e := New(Config{
		Exchanger:           st,
		Roots:               stubRoots(),
		Workers:             8,
		AuthRate:            -1,
		HierarchyRate:       -1,
		DisableCache:        true,
		DisableSingleflight: true,
		Seed:                1,
	})
	for i := 0; i < 8; i++ {
		if err := e.Submit(Target{QName: "dup.example.com.", QType: dnswire.TypeA}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	status := e.Status()
	checkIdentity(t, status)
	if status.Merged != 0 || st.wireCount("dup.example.com.") != 8 {
		t.Fatalf("dedup ran while disabled: merged=%d wire=%d",
			status.Merged, st.wireCount("dup.example.com."))
	}
}

func TestProbeRateLimited(t *testing.T) {
	st := &stubExchanger{}
	e := New(Config{
		Exchanger:           st,
		Roots:               stubRoots(),
		Workers:             4,
		Retries:             -1,
		HierarchyRate:       0.001, // burst of 4, then ~1000s per token
		AuthRate:            -1,
		MaxRateWait:         time.Millisecond,
		DisableCache:        true,
		DisableSingleflight: true,
		Seed:                1,
	})
	const n = 50
	for i := 0; i < n; i++ {
		if err := e.Submit(Target{QName: "h" + string(rune('a'+i%26)) + ".example.com.", QType: dnswire.TypeA}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	status := e.Status()
	checkIdentity(t, status)
	// The burst admits 4 probes; every later token is ~1s away, far past
	// the 1ms patience, so the rest drop as rate-limited.
	if status.Answered != 4 || status.RateLimited != n-4 {
		t.Fatalf("answered=%d rate_limited=%d, want 4/%d", status.Answered, status.RateLimited, n-4)
	}
}

func TestProbeTCPRetryOnTruncation(t *testing.T) {
	st := &stubExchanger{truncUDP: true}
	var res Result
	e := New(Config{
		Exchanger:     st,
		Roots:         stubRoots(),
		Workers:       1,
		AuthRate:      -1,
		HierarchyRate: -1,
		Seed:          1,
		OnResult:      func(r *Result) { res = *r },
	})
	if err := e.Submit(Target{QName: "big.example.com.", QType: dnswire.TypeA}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	status := e.Status()
	checkIdentity(t, status)
	if res.Outcome != OutcomeAnswered || !res.TCPRetried {
		t.Fatalf("outcome=%s tcpRetried=%v", res.Outcome, res.TCPRetried)
	}
	if len(res.Addrs) != 1 || res.Addrs[0] != stubAddr {
		t.Fatalf("TCP retry lost the answer: %v", res.Addrs)
	}
	if status.TCPRetries != 1 || status.WireQueries != 2 {
		t.Fatalf("tcp_retries=%d wire=%d, want 1 and 2", status.TCPRetries, status.WireQueries)
	}
	if status.Retries != 0 {
		t.Fatalf("TCP retry consumed a backoff attempt: retries=%d", status.Retries)
	}
}

// probeOne submits one target on a single-worker engine and waits for
// its result, so wire-query deltas are attributable per probe.
func probeOne(t *testing.T, e *Engine, ch <-chan Result, qname string, qtype dnswire.Type) Result {
	t.Helper()
	if err := e.Submit(Target{QName: qname, QType: qtype}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		return r
	case <-time.After(30 * time.Second):
		t.Fatalf("probe %s never finished", qname)
		return Result{}
	}
}

func TestProbeNegativeCacheEndToEnd(t *testing.T) {
	sim, auth := testAuthority(t, 80)
	ch := make(chan Result, 1)
	e := New(Config{
		Exchanger:     auth,
		Roots:         auth.RootAddrs(),
		Workers:       1,
		Timeout:       5 * time.Second,
		AuthRate:      -1,
		HierarchyRate: -1,
		Seed:          1,
		OnResult:      func(r *Result) { ch <- *r },
	})
	defer e.Close()

	// A hierarchy denial: the registered domain does not exist, so the
	// gTLD's NXDOMAIN covers the whole domain, not just this hostname.
	const ghost = "no-such-zone-dnsobs-test.com."
	if auth.Zone(ghost) != nil {
		t.Fatalf("%s unexpectedly exists in the population", ghost)
	}
	r := probeOne(t, e, ch, "www."+ghost, dnswire.TypeA)
	if r.Outcome != OutcomeAnswered || r.RCode != dnswire.RCodeNXDomain || r.NegCacheHit {
		t.Fatalf("first ghost probe: %+v", r)
	}
	wireAfterFirst := e.Status().WireQueries

	r = probeOne(t, e, ch, "mail."+ghost, dnswire.TypeA)
	if r.Outcome != OutcomeAnswered || r.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("second ghost probe: %+v", r)
	}
	if !r.NegCacheHit || !r.CacheHit {
		t.Fatalf("sibling under denied domain missed the negative cache: %+v", r)
	}
	if d := e.Status().WireQueries - wireAfterFirst; d != 0 {
		t.Fatalf("negative hit still sent %d wire queries", d)
	}

	// A leaf denial: the zone exists, the hostname does not. The denial
	// is cached for the qname only — a sibling hostname still probes.
	zone := sim.Universe.SLDs[0]
	missing := "definitely-not-a-host." + zone.Name
	r = probeOne(t, e, ch, missing, dnswire.TypeA)
	if r.Outcome != OutcomeAnswered || r.RCode != dnswire.RCodeNXDomain || r.NegCacheHit {
		t.Fatalf("first leaf-denial probe: %+v", r)
	}
	wireAfterFirst = e.Status().WireQueries
	r = probeOne(t, e, ch, missing, dnswire.TypeA)
	if !r.NegCacheHit || r.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("repeat leaf denial missed the cache: %+v", r)
	}
	if d := e.Status().WireQueries - wireAfterFirst; d != 0 {
		t.Fatalf("cached leaf denial sent %d wire queries", d)
	}
	if len(zone.FQDNs) > 0 {
		if r = probeOne(t, e, ch, zone.FQDNs[0].Name, dnswire.TypeA); r.NegCacheHit || r.RCode != dnswire.RCodeNoError {
			t.Fatalf("leaf denial leaked onto a live sibling: %+v", r)
		}
	}

	status := e.Status()
	if status.NegativeHits != 2 {
		t.Fatalf("negative hits = %d, want 2", status.NegativeHits)
	}
}

func TestProbeCacheTTLExpiryEndToEnd(t *testing.T) {
	sim, auth := testAuthority(t, 80)
	zone := sim.Universe.SLDs[1]
	if len(zone.FQDNs) == 0 {
		t.Skip("zone without hostnames")
	}
	qname := zone.FQDNs[0].Name

	var clockMu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}
	ch := make(chan Result, 1)
	e := New(Config{
		Exchanger:     auth,
		Roots:         auth.RootAddrs(),
		Workers:       1,
		Timeout:       5 * time.Second,
		AuthRate:      -1,
		HierarchyRate: -1,
		Seed:          1,
		OnResult:      func(r *Result) { ch <- *r },
		Now: func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return now
		},
	})
	defer e.Close()

	wires := func() uint64 { return e.Status().WireQueries }

	// Cold: root referral, TLD referral, authoritative answer.
	w0 := wires()
	if r := probeOne(t, e, ch, qname, dnswire.TypeA); r.CacheHit {
		t.Fatalf("cold probe claims a cache hit: %+v", r)
	}
	if d := wires() - w0; d != 3 {
		t.Fatalf("cold walk took %d wire queries, want 3", d)
	}

	// Warm: the zone delegation is cached, one query to the leaf.
	w1 := wires()
	if r := probeOne(t, e, ch, qname, dnswire.TypeA); !r.CacheHit {
		t.Fatalf("warm probe missed the cache: %+v", r)
	}
	if d := wires() - w1; d != 1 {
		t.Fatalf("warm probe took %d wire queries, want 1", d)
	}

	// Past the 172800s delegation TTL everything expires: full rewalk.
	advance(172801 * time.Second)
	w2 := wires()
	if r := probeOne(t, e, ch, qname, dnswire.TypeA); r.CacheHit {
		t.Fatalf("post-expiry probe claims a cache hit: %+v", r)
	}
	if d := wires() - w2; d != 3 {
		t.Fatalf("post-expiry walk took %d wire queries, want 3", d)
	}
}

func TestProbeSubmitAfterClose(t *testing.T) {
	e := New(Config{Exchanger: &stubExchanger{}, Roots: stubRoots(), Workers: 1, Seed: 1})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(Target{QName: "late.example.com.", QType: dnswire.TypeA}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if st := e.Status(); st.Issued != 0 {
		t.Fatalf("rejected submit still counted: issued=%d", st.Issued)
	}
}
