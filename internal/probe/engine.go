package probe

import (
	"errors"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
)

// Exchanger delivers one ipwire-framed DNS query (UDP or TCP framing)
// to the authoritative it addresses and returns the framed response
// plus the server's modeled response delay. Implementations must be
// safe for concurrent use. simnet.Authority implements this; the chaos
// injector wraps one to inject probe-path faults.
type Exchanger interface {
	Exchange(query []byte) (resp []byte, rtt time.Duration, err error)
}

// Target is one probe: a question plus a queue priority (0 is most
// urgent, drained first; values are clamped to the 0–2 bands).
type Target struct {
	QName    string
	QType    dnswire.Type
	Priority int
}

// Outcome classifies how a probe ended. Every submitted target gets
// exactly one outcome, so after Close the accounting identity
// issued = answered + timeouts + rate-limited + merged holds.
type Outcome uint8

const (
	// OutcomeAnswered means a final response arrived — including
	// NXDOMAIN, NODATA, REFUSED, a negative-cache hit, and a SERVFAIL
	// that survived every retry.
	OutcomeAnswered Outcome = iota
	// OutcomeTimeout means every attempt was lost or late (or the
	// referral chain exceeded the depth limit).
	OutcomeTimeout
	// OutcomeRateLimited means the per-nameserver token bucket could
	// not grant a slot within Config.MaxRateWait.
	OutcomeRateLimited
	// OutcomeMerged means an identical probe was already in flight and
	// this one shares its answer without touching the wire.
	OutcomeMerged
)

// String names the outcome for reports and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeAnswered:
		return "answered"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeRateLimited:
		return "rate_limited"
	case OutcomeMerged:
		return "merged"
	}
	return "unknown"
}

// Result is one finished probe.
type Result struct {
	QName   string
	QType   dnswire.Type
	Outcome Outcome
	RCode   dnswire.RCode

	// Addrs holds the A/AAAA answers; shared between a singleflight
	// leader and its merged followers — do not mutate.
	Addrs []netip.Addr
	TTL   uint32

	// Server answered the final query (zero for cache-only results).
	Server netip.Addr
	// Latency sums the modeled network time across every exchange of
	// the resolution chain (lost attempts contribute the timeout).
	Latency time.Duration

	WireQueries int // exchanges this probe put on the wire
	Retries     int // retry attempts after timeout/SERVFAIL
	CacheHit    bool
	NegCacheHit bool
	TCPRetried  bool
}

// Config parameterizes an Engine. Exchanger and Roots are required;
// every zero field gets the documented default.
type Config struct {
	Exchanger Exchanger
	// Roots is the priming set: addresses of the root servers the
	// iterative walk starts from when the cache has nothing.
	Roots []netip.Addr

	Workers    int // resolver goroutines (default 64)
	QueueDepth int // max queued targets before Submit blocks (default 4096)

	// LocalAddr is the source address probe packets carry
	// (default 198.51.100.53).
	LocalAddr netip.Addr
	// SensorID stamps emitted transactions (default 9000).
	SensorID uint32

	// Timeout is the modeled wait before a reply counts as lost
	// (default 1s). Retries is how many extra attempts follow a
	// timeout or SERVFAIL, each against a rotated server (default 2;
	// -1 means no retries).
	Timeout time.Duration
	Retries int
	// BackoffMin doubles per retry up to BackoffMax, jittered ±50 %
	// (defaults 20ms, 250ms).
	BackoffMin time.Duration
	BackoffMax time.Duration

	// AuthRate and HierarchyRate are per-server token-bucket rates in
	// queries/second for leaf authoritatives and root/TLD servers
	// (defaults 4000 and 500 — infrastructure gets ZDNS-style
	// politeness; negative disables the limit). MaxRateWait caps how
	// long a probe waits for a token before it is dropped as
	// rate-limited (default 250ms).
	AuthRate      float64
	HierarchyRate float64
	MaxRateWait   time.Duration

	// DisableCache turns the NS cache off (the cacheless baseline the
	// benchmarks compare against). DisableSingleflight turns dedup off.
	DisableCache        bool
	DisableSingleflight bool

	// Seed makes worker rngs (query IDs, ports, jitter, server
	// rotation) reproducible.
	Seed int64

	// Suffixes is the public-suffix list used to pick negative-cache
	// keys (default publicsuffix.Default).
	Suffixes *publicsuffix.List

	// Name labels this engine's metrics (default "probe"); Metrics,
	// when set, registers the dnsobs_probe_* families.
	Name    string
	Metrics *metrics.Registry

	// OnResult and OnTransaction observe finished probes and wire
	// exchanges. Both are called serially (see the package doc for
	// buffer-validity rules).
	OnResult      func(*Result)
	OnTransaction func(*sie.Transaction)

	// Now is the clock (default time.Now) — injectable so cache-TTL
	// tests can advance time.
	Now func() time.Time
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("probe: engine closed")

// maxReferralDepth bounds one resolution's referral chain.
const maxReferralDepth = 8

// Engine is the probe plane: a worker pool over a prioritized queue,
// sharing one NS cache, one singleflight table and one rate limiter.
type Engine struct {
	cfg   Config
	cache *nsCache
	sf    *singleflight
	rl    *rateLimiter
	queue *probeQueue

	wg     sync.WaitGroup
	emitMu sync.Mutex

	issued      atomic.Uint64
	answered    atomic.Uint64
	timeouts    atomic.Uint64
	rateLimited atomic.Uint64
	merged      atomic.Uint64
	retries     atomic.Uint64
	sfRetries   atomic.Uint64 // servfail-triggered retries (subset of retries)
	cacheHits   atomic.Uint64
	negHits     atomic.Uint64
	cacheMisses atomic.Uint64
	wireQueries atomic.Uint64
	tcpRetries  atomic.Uint64
	inflight    atomic.Int64

	seconds *metrics.Histogram
}

// New starts an engine: Config.Workers goroutines begin draining the
// queue immediately. Call Close to drain and stop.
func New(cfg Config) *Engine {
	if cfg.Exchanger == nil {
		panic("probe: Config.Exchanger is required")
	}
	if len(cfg.Roots) == 0 {
		panic("probe: Config.Roots is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if !cfg.LocalAddr.IsValid() {
		cfg.LocalAddr = netip.AddrFrom4([4]byte{198, 51, 100, 53})
	}
	if cfg.SensorID == 0 {
		cfg.SensorID = 9000
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 20 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	if cfg.AuthRate == 0 {
		cfg.AuthRate = 4000
	}
	if cfg.HierarchyRate == 0 {
		cfg.HierarchyRate = 500
	}
	if cfg.MaxRateWait <= 0 {
		cfg.MaxRateWait = 250 * time.Millisecond
	}
	if cfg.Suffixes == nil {
		cfg.Suffixes = publicsuffix.Default
	}
	if cfg.Name == "" {
		cfg.Name = "probe"
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Engine{
		cfg:   cfg,
		cache: newNSCache(),
		sf:    newSingleflight(),
		rl:    newRateLimiter(),
		queue: newProbeQueue(cfg.QueueDepth),
	}
	if cfg.Metrics != nil {
		e.instrument(cfg.Metrics)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{e: e, rng: rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))}
		e.wg.Add(1)
		go w.loop()
	}
	return e
}

// Submit queues one probe, blocking while the queue is full. It
// returns ErrClosed once Close has been called.
func (e *Engine) Submit(t Target) error {
	e.issued.Add(1)
	if !e.queue.push(t) {
		e.issued.Add(^uint64(0)) // never enqueued: roll the count back
		return ErrClosed
	}
	return nil
}

// Close stops intake, waits for the queue to drain and every in-flight
// probe to finish, then returns. Safe to call once.
func (e *Engine) Close() error {
	e.queue.close()
	e.wg.Wait()
	return nil
}

// Status is a point-in-time snapshot of the engine counters, also
// served by webui /healthz when wired.
type Status struct {
	Issued      uint64 `json:"issued"`
	Answered    uint64 `json:"answered"`
	Timeouts    uint64 `json:"timeouts"`
	RateLimited uint64 `json:"rate_limited"`
	Merged      uint64 `json:"merged"`

	Retries         uint64 `json:"retries"`
	ServFailRetries uint64 `json:"servfail_retries"`
	CacheHits       uint64 `json:"cache_hits"`
	NegativeHits    uint64 `json:"negative_hits"`
	CacheMisses     uint64 `json:"cache_misses"`
	WireQueries     uint64 `json:"wire_queries"`
	TCPRetries      uint64 `json:"tcp_retries"`

	Inflight     int64 `json:"inflight"`
	Queued       int   `json:"queued"`
	CacheEntries int   `json:"cache_entries"`
}

// Status snapshots the counters.
func (e *Engine) Status() Status {
	return Status{
		Issued:          e.issued.Load(),
		Answered:        e.answered.Load(),
		Timeouts:        e.timeouts.Load(),
		RateLimited:     e.rateLimited.Load(),
		Merged:          e.merged.Load(),
		Retries:         e.retries.Load(),
		ServFailRetries: e.sfRetries.Load(),
		CacheHits:       e.cacheHits.Load(),
		NegativeHits:    e.negHits.Load(),
		CacheMisses:     e.cacheMisses.Load(),
		WireQueries:     e.wireQueries.Load(),
		TCPRetries:      e.tcpRetries.Load(),
		Inflight:        e.inflight.Load(),
		Queued:          e.queue.len(),
		CacheEntries:    e.cache.Len(),
	}
}

// worker is one resolver goroutine with its own rng and scratch
// buffers, so the steady-state probe path allocates only results.
type worker struct {
	e   *Engine
	rng *rand.Rand

	q    dnswire.Message // query being built
	r    dnswire.Message // response being parsed
	qbuf []byte          // packed DNS query
	pbuf []byte          // framed query packet
	tx   sie.Transaction
}

func (w *worker) loop() {
	defer w.e.wg.Done()
	for {
		t, ok := w.e.queue.pop()
		if !ok {
			return
		}
		w.e.inflight.Add(1)
		res := w.e.resolveDedup(w, t)
		w.e.finish(res)
		w.e.inflight.Add(-1)
	}
}

// resolveDedup applies singleflight around the iterative resolution.
func (e *Engine) resolveDedup(w *worker, t Target) *Result {
	if e.cfg.DisableSingleflight {
		return e.resolve(w, t)
	}
	key := t.QName + "|" + t.QType.String()
	c, leader := e.sf.begin(key)
	if leader {
		res := e.resolve(w, t)
		e.sf.finish(key, c, res)
		return res
	}
	shared := c.wait()
	res := *shared
	res.Outcome = OutcomeMerged
	res.WireQueries = 0
	res.Retries = 0
	return &res
}

// finish records the outcome and hands the result to the observer.
func (e *Engine) finish(res *Result) {
	switch res.Outcome {
	case OutcomeAnswered:
		e.answered.Add(1)
		if e.seconds != nil {
			e.seconds.Observe(res.Latency.Seconds())
		}
	case OutcomeTimeout:
		e.timeouts.Add(1)
	case OutcomeRateLimited:
		e.rateLimited.Add(1)
	case OutcomeMerged:
		e.merged.Add(1)
	}
	if e.cfg.OnResult != nil {
		e.emitMu.Lock()
		e.cfg.OnResult(res)
		e.emitMu.Unlock()
	}
}

// emitTx hands one wire exchange to the transaction observer,
// serialized so non-concurrency-safe sinks (transport.Sensor, an
// sie.Writer) can be driven directly.
func (e *Engine) emitTx(tx *sie.Transaction) {
	if e.cfg.OnTransaction == nil {
		return
	}
	e.emitMu.Lock()
	e.cfg.OnTransaction(tx)
	e.emitMu.Unlock()
}

// probeQueue is the bounded three-band priority queue the workers
// drain: band 0 first, FIFO within a band, Submit blocking when full.
type probeQueue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	bands    [3][]Target
	heads    [3]int
	n        int
	depth    int
	closed   bool
}

func newProbeQueue(depth int) *probeQueue {
	q := &probeQueue{depth: depth}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

func (q *probeQueue) push(t Target) bool {
	b := t.Priority
	if b < 0 {
		b = 0
	} else if b > 2 {
		b = 2
	}
	q.mu.Lock()
	for q.n >= q.depth && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.bands[b] = append(q.bands[b], t)
	q.n++
	q.mu.Unlock()
	q.notEmpty.Signal()
	return true
}

func (q *probeQueue) pop() (Target, bool) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return Target{}, false
	}
	for b := 0; b < 3; b++ {
		if q.heads[b] < len(q.bands[b]) {
			t := q.bands[b][q.heads[b]]
			q.heads[b]++
			// Compact the band once the dead prefix dominates, keeping
			// amortized O(1) pops without unbounded slice growth.
			if q.heads[b] > 64 && q.heads[b]*2 >= len(q.bands[b]) {
				q.bands[b] = append(q.bands[b][:0], q.bands[b][q.heads[b]:]...)
				q.heads[b] = 0
			}
			q.n--
			q.mu.Unlock()
			q.notFull.Signal()
			return t, true
		}
	}
	// Unreachable: n > 0 implies a non-empty band.
	q.mu.Unlock()
	return Target{}, false
}

func (q *probeQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

func (q *probeQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
