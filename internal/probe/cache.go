package probe

import (
	"net/netip"
	"strings"
	"sync"
	"time"
)

// nsCacheShards must be a power of two; 64 keeps shard-lock contention
// negligible at 4096-way concurrency while the whole cache stays a few
// hundred KB for paper-scale populations.
const nsCacheShards = 64

// nsCache is the shared NS/infrastructure cache: referrals keyed by the
// zone apex they delegate, plus RFC 2308 negative entries keyed by the
// denied name. Lookup walks a qname's suffixes deepest-first, so a
// cached "example.com." entry short-circuits the root and TLD hops for
// every name under it, and a cached "com." entry still saves the root.
type nsCache struct {
	shards [nsCacheShards]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]cacheEntry
}

type cacheEntry struct {
	servers  []netip.Addr
	expires  time.Time
	negative bool
}

func newNSCache() *nsCache {
	c := &nsCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

// fnv1a hashes a zone name for shard selection.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func (c *nsCache) shard(zone string) *cacheShard {
	return &c.shards[fnv1a(zone)&(nsCacheShards-1)]
}

// Put stores a positive referral: zone is served by servers for ttl
// seconds from now.
func (c *nsCache) Put(zone string, servers []netip.Addr, ttl uint32, now time.Time) {
	if len(servers) == 0 {
		return
	}
	sh := c.shard(zone)
	sh.mu.Lock()
	sh.m[zone] = cacheEntry{
		servers: append([]netip.Addr(nil), servers...),
		expires: now.Add(time.Duration(ttl) * time.Second),
	}
	sh.mu.Unlock()
}

// PutNegative stores an RFC 2308 denial: name does not exist, cached
// for the SOA-minimum ttl.
func (c *nsCache) PutNegative(name string, ttl uint32, now time.Time) {
	sh := c.shard(name)
	sh.mu.Lock()
	sh.m[name] = cacheEntry{
		expires:  now.Add(time.Duration(ttl) * time.Second),
		negative: true,
	}
	sh.mu.Unlock()
}

// Lookup returns the deepest unexpired entry whose key is qname itself
// or one of its parent suffixes. A negative hit means the name is
// known-nonexistent; a positive hit returns the zone apex and its
// nameserver addresses. The returned slice is shared and must not be
// mutated.
func (c *nsCache) Lookup(qname string, now time.Time) (zone string, servers []netip.Addr, negative, ok bool) {
	for n := qname; n != "" && n != "."; {
		sh := c.shard(n)
		sh.mu.Lock()
		e, hit := sh.m[n]
		if hit && now.After(e.expires) {
			delete(sh.m, n) // expired: evict on the way past
			hit = false
		}
		sh.mu.Unlock()
		if hit {
			return n, e.servers, e.negative, true
		}
		dot := strings.IndexByte(n, '.')
		if dot < 0 || dot+1 >= len(n) {
			break
		}
		n = n[dot+1:]
	}
	return "", nil, false, false
}

// Len counts live entries (expired ones still resident included; they
// are evicted lazily on lookup).
func (c *nsCache) Len() int {
	var n int
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
