package probe

import "sync"

// singleflight collapses identical in-flight probes: the first worker
// to take a key becomes the leader and resolves it on the wire; every
// worker that arrives while the leader is still out waits on the call
// and shares the leader's result. Unlike a read-through cache this
// holds nothing after the call completes — dedup applies only to
// concurrent duplicates, which is exactly the window where a second
// wire query would be pure waste.
type singleflight struct {
	mu sync.Mutex
	m  map[string]*sfCall
}

type sfCall struct {
	done chan struct{}
	res  *Result
}

func newSingleflight() *singleflight {
	return &singleflight{m: make(map[string]*sfCall)}
}

// begin either registers the caller as leader for key (leader=true;
// call finish with the result when done) or returns the in-flight call
// to wait on.
func (s *singleflight) begin(key string) (c *sfCall, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.m[key]; ok {
		return c, false
	}
	c = &sfCall{done: make(chan struct{})}
	s.m[key] = c
	return c, true
}

// finish publishes the leader's result and releases the followers. The
// key is dropped before done closes, so a probe submitted after this
// point starts a fresh wire query instead of reading a stale answer.
func (s *singleflight) finish(key string, c *sfCall, res *Result) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	c.res = res
	close(c.done)
}

// wait blocks until the leader finishes and returns the shared result.
func (c *sfCall) wait() *Result {
	<-c.done
	return c.res
}
