// Package probe is the active measurement plane: a ZDNS-style
// high-concurrency iterative resolver that drives thousands of DNS
// lookups against an authoritative population and emits every wire
// exchange as an SIE transaction, so probe traffic merges into the same
// pipeline as the passive feed.
//
// The engine decomposes the classic way — iterator, cache, dedup:
//
//   - A bounded worker pool drains a prioritized probe queue
//     (Submit blocks when the queue is full; band 0 drains first).
//   - A sharded, TTL-aware NS cache remembers referrals by zone apex,
//     including RFC 2308 negative entries, so repeated probes into a
//     zone skip the root/TLD walk.
//   - Singleflight collapses identical in-flight questions: one worker
//     resolves, the rest wait and share the answer (Outcome Merged).
//   - Per-nameserver token buckets rate-limit the wire, with stricter
//     defaults for root/TLD servers; timeouts and SERVFAILs retry with
//     jittered exponential backoff on a rotated server.
//
// # Concurrency contract
//
// An Engine is safe for concurrent Submit from any number of
// goroutines. Internally Config.Workers goroutines resolve probes in
// parallel, but the two callbacks — Config.OnResult and
// Config.OnTransaction — are always invoked serially under one
// mutex, so a transport.Sensor (which is not concurrency-safe) can be
// written from OnTransaction directly. The *sie.Transaction passed to
// OnTransaction aliases per-worker scratch buffers and is valid only
// for the duration of the call; copy it (or hand it to a writer that
// does) before returning. The *Result passed to OnResult is owned by
// the callee, except that Addrs may be shared between a singleflight
// leader and its merged followers and must not be mutated.
//
// Close stops intake, drains the queue, waits for every in-flight
// probe, and only then returns; after Close the accounting identity
//
//	Issued = Answered + Timeouts + RateLimited + Merged
//
// holds exactly (resolution chains that exceed the referral-depth
// limit count as Timeouts). Config.Exchanger must be safe for
// concurrent use; simnet.Authority and the chaos probe-fault wrapper
// both are.
package probe
