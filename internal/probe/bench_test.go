package probe

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/simnet"
)

// benchPop is the shared benchmark population: built once, reused by
// every sub-benchmark invocation (the go test harness re-runs each
// benchmark with growing b.N).
var benchPop struct {
	once  sync.Once
	auth  *simnet.Authority
	names []string
}

func benchPopulation(b *testing.B) (*simnet.Authority, []string) {
	b.Helper()
	benchPop.once.Do(func() {
		cfg := simnet.DefaultConfig()
		cfg.SLDs = 2500
		cfg.Resolvers = 1
		cfg.Sensors = 1
		cfg.QPS = 1
		cfg.Duration = 1
		cfg.ColdCaches = true
		sim := simnet.New(cfg)
		benchPop.auth = simnet.NewAuthority(sim, simnet.AuthorityConfig{})
		for _, zone := range sim.Universe.SLDs {
			for i, f := range zone.FQDNs {
				if i >= 2 {
					break
				}
				benchPop.names = append(benchPop.names, f.Name)
			}
		}
	})
	return benchPop.auth, benchPop.names
}

// waitResults spins until n results have been observed.
func waitResults(done *atomic.Uint64, n uint64) {
	for done.Load() < n {
		time.Sleep(50 * time.Microsecond)
	}
}

// BenchmarkProbeThroughput measures end-to-end probes/sec through the
// full engine (cache + singleflight + polite rate limits) against the
// frozen population at the paper-relevant concurrency ladder. The cache
// is prewarmed with one pass over the target list, so the figure is the
// steady-state closed-loop rate, not the cold-start hierarchy walk.
func BenchmarkProbeThroughput(b *testing.B) {
	auth, names := benchPopulation(b)
	for _, workers := range []int{1, 64, 512, 4096} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var done atomic.Uint64
			e := New(Config{
				Exchanger:   auth,
				Roots:       auth.RootAddrs(),
				Workers:     workers,
				QueueDepth:  8192,
				Timeout:     5 * time.Second,
				MaxRateWait: 10 * time.Second, // wait politely, never drop
				Seed:        1,
				OnResult:    func(*Result) { done.Add(1) },
			})
			defer e.Close()
			for _, name := range names {
				if err := e.Submit(Target{QName: name, QType: dnswire.TypeA}); err != nil {
					b.Fatal(err)
				}
			}
			waitResults(&done, uint64(len(names)))
			done.Store(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Submit(Target{QName: names[i%len(names)], QType: dnswire.TypeA}); err != nil {
					b.Fatal(err)
				}
			}
			waitResults(&done, uint64(b.N))
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
		})
	}
}

// BenchmarkProbeCacheWins quantifies what the shared NS cache buys: the
// cold-cacheless baseline walks root→TLD→leaf for every probe and is
// bounded by the hierarchy politeness rate, while the warm engine rides
// cached delegations straight to the leaf.
func BenchmarkProbeCacheWins(b *testing.B) {
	auth, names := benchPopulation(b)
	run := func(b *testing.B, warm bool) {
		var done atomic.Uint64
		cfg := Config{
			Exchanger:   auth,
			Roots:       auth.RootAddrs(),
			Workers:     512,
			QueueDepth:  8192,
			Timeout:     5 * time.Second,
			MaxRateWait: 10 * time.Second,
			Seed:        1,
			OnResult:    func(*Result) { done.Add(1) },
		}
		if !warm {
			cfg.DisableCache = true
			cfg.DisableSingleflight = true
		}
		e := New(cfg)
		defer e.Close()
		if warm {
			for _, name := range names {
				if err := e.Submit(Target{QName: name, QType: dnswire.TypeA}); err != nil {
					b.Fatal(err)
				}
			}
			waitResults(&done, uint64(len(names)))
			done.Store(0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Submit(Target{QName: names[i%len(names)], QType: dnswire.TypeA}); err != nil {
				b.Fatal(err)
			}
		}
		waitResults(&done, uint64(b.N))
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
		st := e.Status()
		if st.Issued > 0 {
			b.ReportMetric(float64(st.WireQueries)/float64(st.Issued), "wire/probe")
		}
	}
	b.Run("cold-cacheless", func(b *testing.B) { run(b, false) })
	b.Run("warm-cached", func(b *testing.B) { run(b, true) })
}

// BenchmarkProbeSingleflightDedup measures how much of a duplicate-heavy
// feed the singleflight table collapses: 512 workers hammer 8 hot names
// whose authoritatives hold each exchange open 2ms, so duplicates pile
// onto in-flight leaders instead of the wire.
func BenchmarkProbeSingleflightDedup(b *testing.B) {
	auth, names := benchPopulation(b)
	hot := names[:8]
	var done atomic.Uint64
	e := New(Config{
		Exchanger:     &holdExchanger{hold: 2 * time.Millisecond, x: auth},
		Roots:         auth.RootAddrs(),
		Workers:       512,
		QueueDepth:    8192,
		Timeout:       5 * time.Second,
		AuthRate:      -1,
		HierarchyRate: -1,
		Seed:          1,
		OnResult:      func(*Result) { done.Add(1) },
	})
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Submit(Target{QName: hot[i%len(hot)], QType: dnswire.TypeA}); err != nil {
			b.Fatal(err)
		}
	}
	waitResults(&done, uint64(b.N))
	b.StopTimer()
	st := e.Status()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
	if st.Issued > 0 {
		b.ReportMetric(float64(st.Merged)/float64(st.Issued)*100, "collapse%")
	}
}
