package spacesaving

import (
	"fmt"
	"math/rand"
	"testing"
)

// fnv1a mirrors the sharded engine's key router for partition tests.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// TestMergePartitionedEqualsSerial is the core sharded-ingest guarantee:
// hash-partitioning a stream across S caches and merging reproduces the
// serial cache exactly when no cache is under eviction pressure.
func TestMergePartitionedEqualsSerial(t *testing.T) {
	const shards = 4
	serial := New(10_000, 60, nil)
	parts := make([]*Cache, shards)
	for i := range parts {
		parts[i] = New(10_000/shards+1000, 60, nil)
	}
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.3, 1, 999)
	for i := 0; i < 50_000; i++ {
		k := fmt.Sprintf("key%03d", zipf.Uint64())
		now := float64(i) / 1000
		serial.Observe(k, now)
		parts[fnv1a(k)%shards].Observe(k, now)
	}
	want := serial.Top(0)
	got := Merge(0, parts...)
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, serial has %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Key != w.Key || g.Count != w.Count || g.Error != w.Error {
			t.Fatalf("entry %d: merged %s/%d/%d, serial %s/%d/%d",
				i, g.Key, g.Count, g.Error, w.Key, w.Count, w.Error)
		}
		if g.Rate != w.Rate {
			t.Errorf("%s: merged rate %f, serial %f", g.Key, g.Rate, w.Rate)
		}
	}
}

// TestMergeUnderEvictionWithinBound checks the overestimation contract
// survives merging when the shard caches do evict: every merged count
// stays within [truth, truth+error] and heavy keys all surface.
func TestMergeUnderEvictionWithinBound(t *testing.T) {
	const shards = 4
	parts := make([]*Cache, shards)
	for i := range parts {
		parts[i] = New(50, 60, nil)
	}
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100_000; i++ {
		var k string
		if rng.Float64() < 0.5 {
			k = fmt.Sprintf("heavy%02d", rng.Intn(10))
		} else {
			k = fmt.Sprintf("rare%05d", rng.Intn(20000))
		}
		truth[k]++
		parts[fnv1a(k)%shards].Observe(k, float64(i)/1000)
	}
	merged := Merge(20, parts...)
	heavies := 0
	for _, e := range merged {
		if e.Count < truth[e.Key] {
			t.Errorf("%s: merged count %d below truth %d", e.Key, e.Count, truth[e.Key])
		}
		if e.Count-e.Error > truth[e.Key] {
			t.Errorf("%s: count-error %d above truth %d", e.Key, e.Count-e.Error, truth[e.Key])
		}
		if len(e.Key) > 5 && e.Key[:5] == "heavy" {
			heavies++
		}
	}
	if heavies < 10 {
		t.Errorf("only %d/10 heavy hitters in merged top-20", heavies)
	}
}

func TestMergeSumsDuplicates(t *testing.T) {
	a, b := New(10, 60, nil), New(10, 60, nil)
	a.Observe("x", 0)
	a.Observe("x", 1)
	b.Observe("x", 2)
	b.Observe("y", 3)
	got := Merge(0, a, b)
	if len(got) != 2 {
		t.Fatalf("entries = %d", len(got))
	}
	if got[0].Key != "x" || got[0].Count != 3 {
		t.Errorf("x merged to %+v", got[0])
	}
	if got[1].Key != "y" || got[1].Count != 1 {
		t.Errorf("y merged to %+v", got[1])
	}
	// Merged entries are copies: mutating them must not touch the caches.
	got[0].Count = 999
	if a.Get("x").Count != 2 {
		t.Error("merge aliased a live entry")
	}
}

func TestMergeTruncatesToN(t *testing.T) {
	a := New(10, 60, nil)
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			a.Observe(fmt.Sprintf("k%d", i), 0)
		}
	}
	got := Merge(3, a)
	if len(got) != 3 || got[0].Key != "k7" || got[2].Key != "k5" {
		t.Errorf("top-3 = %v", got)
	}
}

func TestOnEvictStateRecycles(t *testing.T) {
	c := New(1, 60, nil)
	var recycled []any
	c.OnEvictState = func(s any) { recycled = append(recycled, s) }
	e := c.Observe("first", 0)
	e.State = "payload"
	e2 := c.Observe("second", 1)
	if e2.State != nil {
		t.Errorf("state leaked across eviction: %v", e2.State)
	}
	if len(recycled) != 1 || recycled[0] != "payload" {
		t.Errorf("recycled = %v", recycled)
	}
	// Entries evicted with nil State do not invoke the hook.
	c.Observe("third", 2)
	if len(recycled) != 1 {
		t.Errorf("hook fired for nil state: %v", recycled)
	}
}

// TestHeapInvariant hammers the flat heap with a churny stream and
// verifies the min-heap property and index bookkeeping after every phase.
func TestHeapInvariant(t *testing.T) {
	c := New(64, 60, nil)
	rng := rand.New(rand.NewSource(13))
	check := func() {
		t.Helper()
		for i := range c.min {
			if c.min[i].index != i {
				t.Fatalf("entry %q stores index %d at slot %d", c.min[i].Key, c.min[i].index, i)
			}
			if l := 2*i + 1; l < len(c.min) && c.min[i].Count > c.min[l].Count {
				t.Fatalf("heap violated at %d/%d: %d > %d", i, l, c.min[i].Count, c.min[l].Count)
			}
			if r := 2*i + 2; r < len(c.min) && c.min[i].Count > c.min[r].Count {
				t.Fatalf("heap violated at %d/%d: %d > %d", i, r, c.min[i].Count, c.min[r].Count)
			}
		}
	}
	for i := 0; i < 20_000; i++ {
		c.Observe(fmt.Sprintf("k%d", rng.Intn(300)), float64(i)/100)
		if i%997 == 0 {
			check()
		}
	}
	check()
	if len(c.min) != c.Len() {
		t.Fatalf("heap len %d != map len %d", len(c.min), c.Len())
	}
}

// TestTopPartialSelectionMatchesFullSort cross-checks the heap-based
// partial selection against a full sort for many n.
func TestTopPartialSelectionMatchesFullSort(t *testing.T) {
	c := New(500, 60, nil)
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 30_000; i++ {
		c.Observe(fmt.Sprintf("k%03d", rng.Intn(400)), float64(i)/100)
	}
	full := c.Top(0)
	for _, n := range []int{1, 2, 3, 10, 50, 399, 400, 1000} {
		got := c.Top(n)
		want := full
		if n < len(full) {
			want = full[:n]
		}
		if len(got) != len(want) {
			t.Fatalf("Top(%d) len = %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key {
				t.Fatalf("Top(%d)[%d] = %s, want %s", n, i, got[i].Key, want[i].Key)
			}
		}
	}
}
