package spacesaving

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Space-Saving structural invariants, maintained across arbitrary
// observation sequences:
//
//  1. the number of monitored keys never exceeds capacity;
//  2. every estimate is at least its own error term;
//  3. the sum of all counts equals the number of observations once the
//     cache has admitted every observation (no admitter);
//  4. MinCount is a lower bound of every monitored count.
func TestStructuralInvariantsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := New(64, 60, nil)
	var observations uint64
	f := func(sel uint16) bool {
		key := fmt.Sprintf("k%d", int(sel)%300)
		now := float64(observations) * 0.01
		c.Observe(key, now)
		observations++

		if c.Len() > 64 {
			return false
		}
		min := c.MinCount()
		var sum uint64
		bad := false
		c.Entries(func(e *Entry) {
			sum += e.Count
			if e.Count < e.Error || e.Count < min {
				bad = true
			}
			if e.Rate < 0 {
				bad = true
			}
		})
		if bad {
			return false
		}
		// Classic Space-Saving property: total monitored count equals
		// the stream length (each observation increments exactly one
		// monitored counter, and evictions inherit counts).
		return sum == observations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	_ = rng
}

// With an admitter, the monitored-count sum can only lag the stream by
// the number of dropped observations.
func TestAdmitterAccountingQuick(t *testing.T) {
	c := New(16, 60, fakeAdmitter{})
	var observations uint64
	f := func(sel uint16) bool {
		key := fmt.Sprintf("k%d", int(sel)%500)
		c.Observe(key, float64(observations)*0.01)
		observations++
		var sum uint64
		c.Entries(func(e *Entry) { sum += e.Count })
		return sum+c.Dropped() == observations && c.Hits() == observations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// fakeAdmitter rejects every first sighting (remembers nothing), the
// harshest possible admission policy.
type fakeAdmitter struct{}

func (fakeAdmitter) Contains(string) bool { return false }
func (fakeAdmitter) Add(string)           {}
