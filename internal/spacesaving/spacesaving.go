package spacesaving

import (
	"math"
	"sort"
)

// Admitter decides whether a previously unmonitored key may evict the
// minimum entry. bloom.Filter satisfies it.
type Admitter interface {
	Contains(key string) bool
	Add(key string)
}

// BytesAdmitter is the optional byte-slice fast path of an Admitter; an
// admitter implementing it (bloom.Filter does) lets ObserveBytes consult
// the filter without materializing a key string. The two views must
// agree: ContainsBytes(b) == Contains(string(b)).
type BytesAdmitter interface {
	ContainsBytes(key []byte) bool
	AddBytes(key []byte)
}

// Entry is a monitored object.
type Entry struct {
	Key   string
	Count uint64  // estimated hits, includes inherited error
	Error uint64  // max overestimation (count of the entry evicted for us)
	Rate  float64 // exponentially decayed transactions per second

	// State is arbitrary per-object state attached by the caller — the
	// Observatory hangs its feature accumulators here. It survives
	// rate/count updates but is discarded on eviction (see
	// Cache.OnEvictState for recycling it instead).
	State any

	// InsertedAt is the stream time the key last entered the cache; the
	// Observatory skips objects younger than one window when dumping
	// snapshots (§2.4).
	InsertedAt float64

	index  int     // heap index
	rateAt float64 // time of the last rate update
}

// Cache is a Space-Saving top-k cache. Create one with New. Cache is not
// safe for concurrent use.
type Cache struct {
	capacity int
	halfLife float64 // seconds for a rate estimate to decay by half
	entries  map[string]*Entry
	min      minHeap
	admitter Admitter
	// bytesAdm is the admitter's BytesAdmitter view, type-asserted once
	// at New so ObserveBytes pays no interface assertion per call.
	bytesAdm  BytesAdmitter
	hits      uint64
	dropped   uint64
	evictions uint64

	// OnEvictState, when non-nil, receives the State of every evicted
	// entry (if non-nil) just before the entry is reassigned to the
	// newcomer. The Observatory uses it to recycle per-object feature
	// sets, which dominate allocation on eviction-heavy streams. Set it
	// once, right after New.
	OnEvictState func(state any)
}

// New returns a cache monitoring up to capacity keys. halfLife is the
// decay half-life in seconds of the per-object rate estimate; 60 s
// mirrors the Observatory's 1-minute windows. admitter may be nil.
func New(capacity int, halfLife float64, admitter Admitter) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if halfLife <= 0 {
		halfLife = 60
	}
	c := &Cache{
		capacity: capacity,
		halfLife: halfLife,
		entries:  make(map[string]*Entry, capacity),
		min:      make(minHeap, 0, capacity),
		admitter: admitter,
	}
	if ba, ok := admitter.(BytesAdmitter); ok {
		c.bytesAdm = ba
	}
	return c
}

// Observe records one occurrence of key at stream time now (seconds, any
// epoch, monotone non-decreasing). It returns the entry monitoring key,
// or nil if the key was not admitted.
func (c *Cache) Observe(key string, now float64) *Entry {
	c.hits++
	if e, ok := c.entries[key]; ok {
		return c.touch(e, now)
	}
	if len(c.entries) < c.capacity {
		return c.insert(key, now)
	}
	// Full: the newcomer must displace the minimum entry. With an
	// admission filter, a never-before-seen key only registers its first
	// sighting and is dropped.
	if c.admitter != nil && !c.admitter.Contains(key) {
		c.admitter.Add(key)
		c.dropped++
		return nil
	}
	return c.evictInto(key, now)
}

// ObserveBytes is Observe for a byte-slice view of the key. The dominant
// case — the key is already monitored — is a pure map lookup that the
// compiler performs without materializing a string, so composite keys
// built in a reusable buffer (e.g. the srcsrv resolver>nameserver pair)
// cost zero allocations at steady state. A string is materialized only
// when the key actually enters the cache.
func (c *Cache) ObserveBytes(key []byte, now float64) *Entry {
	c.hits++
	if e, ok := c.entries[string(key)]; ok {
		return c.touch(e, now)
	}
	if len(c.entries) < c.capacity {
		return c.insert(string(key), now)
	}
	if c.admitter != nil {
		if c.bytesAdm != nil {
			if !c.bytesAdm.ContainsBytes(key) {
				c.bytesAdm.AddBytes(key)
				c.dropped++
				return nil
			}
		} else if !c.admitter.Contains(string(key)) {
			c.admitter.Add(string(key))
			c.dropped++
			return nil
		}
	}
	return c.evictInto(string(key), now)
}

// touch is the monitored-key fast path: bump the count and rate and
// restore the heap.
func (c *Cache) touch(e *Entry, now float64) *Entry {
	e.Count++
	c.bumpRate(e, now)
	// Count grew by exactly one, so the heap property can only break
	// towards the children: a single bounded sift-down restores it.
	c.min.down(e.index)
	return e
}

// insert admits a key while the cache is below capacity.
func (c *Cache) insert(key string, now float64) *Entry {
	e := &Entry{Key: key, Count: 1, InsertedAt: now, rateAt: now}
	e.Rate = c.instantRate()
	c.entries[key] = e
	e.index = len(c.min)
	c.min = append(c.min, e)
	c.min.up(e.index)
	return e
}

// evictInto displaces the minimum entry with key.
func (c *Cache) evictInto(key string, now float64) *Entry {
	c.evictions++
	e := c.min[0]
	delete(c.entries, e.Key)
	if e.State != nil && c.OnEvictState != nil {
		c.OnEvictState(e.State)
	}
	// Keep (and update) the evicted entry's frequency estimate, per the
	// paper: the newcomer inherits count and rate, but not State.
	e.Key = key
	e.Error = e.Count
	e.Count++
	e.State = nil
	e.InsertedAt = now
	c.bumpRate(e, now)
	c.entries[key] = e
	c.min.down(0)
	return e
}

// bumpRate folds one new observation into the decayed rate estimate.
func (c *Cache) bumpRate(e *Entry, now float64) {
	dt := now - e.rateAt
	if dt < 0 {
		dt = 0
	}
	// Decay the previous estimate, then add the instantaneous
	// contribution of one event smoothed over the half-life.
	decay := math.Exp2(-dt / c.halfLife)
	e.Rate = e.Rate*decay + (1-decay)/math.Max(dt, 1e-9)
	if dt == 0 {
		// Multiple events at the same instant: accumulate linearly at
		// the per-half-life normalization so bursts still register.
		e.Rate += math.Ln2 / c.halfLife
	}
	e.rateAt = now
}

// instantRate is the rate assigned to a brand-new entry: one event, no
// history.
func (c *Cache) instantRate() float64 { return math.Ln2 / c.halfLife }

// RateAt returns e's rate estimate decayed to time now. Entry.Rate is
// only updated on Observe, so for objects idle since their last hit it
// overstates current traffic; always read rates through RateAt when
// comparing objects at a common instant (e.g. at window dumps).
func (c *Cache) RateAt(e *Entry, now float64) float64 {
	dt := now - e.rateAt
	if dt <= 0 {
		return e.Rate
	}
	return e.Rate * math.Exp2(-dt/c.halfLife)
}

// Get returns the entry monitoring key, or nil.
func (c *Cache) Get(key string) *Entry {
	return c.entries[key]
}

// Len returns the number of monitored keys.
func (c *Cache) Len() int { return len(c.entries) }

// Capacity returns the maximum number of monitored keys.
func (c *Cache) Capacity() int { return c.capacity }

// Hits returns the total observations, Dropped those rejected by the
// admission filter.
func (c *Cache) Hits() uint64    { return c.hits }
func (c *Cache) Dropped() uint64 { return c.dropped }

// Evictions returns how many times a minimum entry was displaced by a
// new key — the churn a Bloom admitter exists to suppress.
func (c *Cache) Evictions() uint64 { return c.evictions }

// MinCount returns the smallest monitored count — the overestimation
// bound for any reported frequency.
func (c *Cache) MinCount() uint64 {
	if len(c.min) == 0 {
		return 0
	}
	return c.min[0].Count
}

// less is the canonical report order: descending count, ties broken by
// ascending key.
func less(a, b *Entry) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Key < b.Key
}

func sortEntries(es []*Entry) {
	sort.Slice(es, func(i, j int) bool { return less(es[i], es[j]) })
}

// Top returns up to n entries ordered by descending count (ties broken
// by key). The returned slice is freshly allocated; entries are shared.
// For n much smaller than the cache it runs a partial selection over a
// size-n heap instead of sorting the full entry set.
func (c *Cache) Top(n int) []*Entry {
	if n <= 0 || n >= len(c.entries) {
		all := make([]*Entry, 0, len(c.entries))
		for _, e := range c.entries {
			all = append(all, e)
		}
		sortEntries(all)
		return all
	}
	// Partial selection: a min-heap of the n strongest entries seen so
	// far, keyed by report order so its root is the weakest survivor.
	// Entry.index is NOT touched — the entries stay live in c.min.
	sel := make([]*Entry, 0, n)
	for _, e := range c.entries {
		if len(sel) < n {
			sel = append(sel, e)
			i := len(sel) - 1
			for i > 0 {
				p := (i - 1) / 2
				if !less(sel[p], sel[i]) {
					break
				}
				sel[i], sel[p] = sel[p], sel[i]
				i = p
			}
			continue
		}
		if !less(e, sel[0]) {
			continue // weaker than the weakest survivor
		}
		sel[0] = e
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && less(sel[l], sel[r]) {
				m = r
			}
			if !less(sel[i], sel[m]) {
				break
			}
			sel[i], sel[m] = sel[m], sel[i]
			i = m
		}
	}
	sortEntries(sel)
	return sel
}

// Entries calls fn for every monitored entry in unspecified order.
func (c *Cache) Entries(fn func(*Entry)) {
	for _, e := range c.entries {
		fn(e)
	}
}

// Merge combines the live entries of several caches into one top-n list —
// the standard parallel Space-Saving merge: counts, errors and rates of
// duplicate keys are summed, then the strongest n entries (by count,
// ties by key) survive. n <= 0 keeps every merged entry.
//
// The merge is exact when the caches track key-disjoint partitions of one
// stream (the sharded ingest shape: every key hashes to exactly one
// shard), because a key absent from a shard truly has count zero there.
// For caches over overlapping streams the summed counts remain upper
// bounds but may undercount keys evicted from some of the caches.
//
// Returned entries are copies: mutating them does not disturb the source
// caches, and State is preserved only for keys contributed by a single
// cache (a merged State would be ambiguous).
func Merge(n int, caches ...*Cache) []*Entry {
	total := 0
	for _, c := range caches {
		total += len(c.entries)
	}
	merged := make(map[string]*Entry, total)
	for _, c := range caches {
		for _, e := range c.entries {
			m, ok := merged[e.Key]
			if !ok {
				cp := *e
				cp.index = -1
				merged[e.Key] = &cp
				continue
			}
			m.Count += e.Count
			m.Error += e.Error
			m.Rate += e.Rate
			if e.InsertedAt > m.InsertedAt {
				m.InsertedAt = e.InsertedAt
			}
			if e.rateAt > m.rateAt {
				m.rateAt = e.rateAt
			}
			m.State = nil
		}
	}
	out := make([]*Entry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sortEntries(out)
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// minHeap orders entries by ascending count so the eviction victim is at
// the root. It is a flat index-based binary heap: Observe only ever
// increments a count by one or replaces the root, so the two bounded
// sifts below are all it needs — no container/heap interface calls, no
// interface boxing on the hot path.
type minHeap []*Entry

// up sifts the entry at i towards the root (hole-based: the entry is
// written once at its final slot).
func (h minHeap) up(i int) {
	e := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Count <= e.Count {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = e
	e.index = i
}

// down sifts the entry at i towards the leaves.
func (h minHeap) down(i int) {
	n := len(h)
	e := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].Count < h[l].Count {
			m = r
		}
		if e.Count <= h[m].Count {
			break
		}
		h[i] = h[m]
		h[i].index = i
		i = m
	}
	h[i] = e
	e.index = i
}
