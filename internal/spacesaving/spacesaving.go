// Package spacesaving implements the Space-Saving algorithm of Metwally,
// Agrawal and El Abbadi (ICDT 2005) for tracking the top-k most frequent
// items in a stream with bounded memory — the basic tool of DNS
// Observatory (§2.2).
//
// Two departures from the textbook algorithm follow the paper:
//
//   - Each monitored object carries an exponentially decaying moving
//     average that estimates its transaction rate (hits per second), so
//     popularity reflects recent traffic rather than all-time counts.
//   - Before evicting the minimum entry for a never-seen key, an optional
//     admission filter (a Bloom filter) is consulted, so that a key must
//     be seen at least twice before it can displace a monitored object.
//     This shields the top list from incidental observations of rare keys.
//
// Evicted entries bequeath their count to the newcomer (the classic
// overestimation bound: error <= min count).
package spacesaving

import (
	"container/heap"
	"math"
	"sort"
)

// Admitter decides whether a previously unmonitored key may evict the
// minimum entry. bloom.Filter satisfies it.
type Admitter interface {
	Contains(key string) bool
	Add(key string)
}

// Entry is a monitored object.
type Entry struct {
	Key   string
	Count uint64  // estimated hits, includes inherited error
	Error uint64  // max overestimation (count of the entry evicted for us)
	Rate  float64 // exponentially decayed transactions per second

	// State is arbitrary per-object state attached by the caller — the
	// Observatory hangs its feature accumulators here. It survives
	// rate/count updates but is discarded on eviction.
	State any

	// InsertedAt is the stream time the key last entered the cache; the
	// Observatory skips objects younger than one window when dumping
	// snapshots (§2.4).
	InsertedAt float64

	index  int     // heap index
	rateAt float64 // time of the last rate update
}

// Cache is a Space-Saving top-k cache. Create one with New. Cache is not
// safe for concurrent use.
type Cache struct {
	capacity int
	halfLife float64 // seconds for a rate estimate to decay by half
	entries  map[string]*Entry
	min      minHeap
	admitter Admitter
	hits     uint64
	dropped  uint64
}

// New returns a cache monitoring up to capacity keys. halfLife is the
// decay half-life in seconds of the per-object rate estimate; 60 s
// mirrors the Observatory's 1-minute windows. admitter may be nil.
func New(capacity int, halfLife float64, admitter Admitter) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if halfLife <= 0 {
		halfLife = 60
	}
	return &Cache{
		capacity: capacity,
		halfLife: halfLife,
		entries:  make(map[string]*Entry, capacity),
		min:      make(minHeap, 0, capacity),
		admitter: admitter,
	}
}

// Observe records one occurrence of key at stream time now (seconds, any
// epoch, monotone non-decreasing). It returns the entry monitoring key,
// or nil if the key was not admitted.
func (c *Cache) Observe(key string, now float64) *Entry {
	c.hits++
	if e, ok := c.entries[key]; ok {
		e.Count++
		c.bumpRate(e, now)
		heap.Fix(&c.min, e.index)
		return e
	}
	if len(c.entries) < c.capacity {
		e := &Entry{Key: key, Count: 1, InsertedAt: now, rateAt: now}
		e.Rate = c.instantRate()
		c.entries[key] = e
		heap.Push(&c.min, e)
		return e
	}
	// Full: the newcomer must displace the minimum entry. With an
	// admission filter, a never-before-seen key only registers its first
	// sighting and is dropped.
	if c.admitter != nil && !c.admitter.Contains(key) {
		c.admitter.Add(key)
		c.dropped++
		return nil
	}
	e := c.min[0]
	delete(c.entries, e.Key)
	// Keep (and update) the evicted entry's frequency estimate, per the
	// paper: the newcomer inherits count and rate, but not State.
	e.Key = key
	e.Error = e.Count
	e.Count++
	e.State = nil
	e.InsertedAt = now
	c.bumpRate(e, now)
	c.entries[key] = e
	heap.Fix(&c.min, 0)
	return e
}

// bumpRate folds one new observation into the decayed rate estimate.
func (c *Cache) bumpRate(e *Entry, now float64) {
	dt := now - e.rateAt
	if dt < 0 {
		dt = 0
	}
	// Decay the previous estimate, then add the instantaneous
	// contribution of one event smoothed over the half-life.
	decay := math.Exp2(-dt / c.halfLife)
	e.Rate = e.Rate*decay + (1-decay)/math.Max(dt, 1e-9)
	if dt == 0 {
		// Multiple events at the same instant: accumulate linearly at
		// the per-half-life normalization so bursts still register.
		e.Rate += math.Ln2 / c.halfLife
	}
	e.rateAt = now
}

// instantRate is the rate assigned to a brand-new entry: one event, no
// history.
func (c *Cache) instantRate() float64 { return math.Ln2 / c.halfLife }

// RateAt returns e's rate estimate decayed to time now. Entry.Rate is
// only updated on Observe, so for objects idle since their last hit it
// overstates current traffic; always read rates through RateAt when
// comparing objects at a common instant (e.g. at window dumps).
func (c *Cache) RateAt(e *Entry, now float64) float64 {
	dt := now - e.rateAt
	if dt <= 0 {
		return e.Rate
	}
	return e.Rate * math.Exp2(-dt/c.halfLife)
}

// Get returns the entry monitoring key, or nil.
func (c *Cache) Get(key string) *Entry {
	return c.entries[key]
}

// Len returns the number of monitored keys.
func (c *Cache) Len() int { return len(c.entries) }

// Hits returns the total observations, Dropped those rejected by the
// admission filter.
func (c *Cache) Hits() uint64    { return c.hits }
func (c *Cache) Dropped() uint64 { return c.dropped }

// MinCount returns the smallest monitored count — the overestimation
// bound for any reported frequency.
func (c *Cache) MinCount() uint64 {
	if len(c.min) == 0 {
		return 0
	}
	return c.min[0].Count
}

// Top returns up to n entries ordered by descending count (ties broken
// by key). The returned slice is freshly allocated; entries are shared.
func (c *Cache) Top(n int) []*Entry {
	all := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// Entries calls fn for every monitored entry in unspecified order.
func (c *Cache) Entries(fn func(*Entry)) {
	for _, e := range c.entries {
		fn(e)
	}
}

// minHeap orders entries by ascending count so the eviction victim is at
// the root.
type minHeap []*Entry

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i].Count < h[j].Count }

func (h minHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *minHeap) Push(x any) {
	e := x.(*Entry)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *minHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
