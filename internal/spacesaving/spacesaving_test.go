package spacesaving

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dnsobservatory/internal/bloom"
)

func TestExactWhenUnderCapacity(t *testing.T) {
	c := New(100, 60, nil)
	for i := 0; i < 50; i++ {
		for j := 0; j <= i; j++ {
			c.Observe(fmt.Sprintf("k%02d", i), float64(j))
		}
	}
	if c.Len() != 50 {
		t.Fatalf("len = %d", c.Len())
	}
	top := c.Top(3)
	if top[0].Key != "k49" || top[0].Count != 50 || top[0].Error != 0 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Key != "k48" || top[2].Key != "k47" {
		t.Errorf("order: %s %s", top[1].Key, top[2].Key)
	}
}

func TestEvictionInheritsCount(t *testing.T) {
	c := New(2, 60, nil)
	c.Observe("a", 0)
	c.Observe("a", 1)
	c.Observe("a", 2) // a: 3
	c.Observe("b", 3) // b: 1
	e := c.Observe("x", 4)
	if e == nil {
		t.Fatal("x not admitted without filter")
	}
	// x replaced b (min count 1) and inherited it: count 2, error 1.
	if e.Key != "x" || e.Count != 2 || e.Error != 1 {
		t.Errorf("entry = %+v", e)
	}
	if c.Get("b") != nil {
		t.Error("b still present")
	}
	if c.Get("a") == nil {
		t.Error("a evicted wrongly")
	}
}

func TestOverestimationBound(t *testing.T) {
	// Classic SS guarantee: true count <= estimate <= true count + min.
	rng := rand.New(rand.NewSource(3))
	c := New(50, 60, nil)
	truth := map[string]uint64{}
	// Zipf-ish stream over 500 keys.
	zipf := rand.NewZipf(rng, 1.3, 1, 499)
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key%03d", zipf.Uint64())
		truth[k]++
		c.Observe(k, float64(i)/1000)
	}
	c.Entries(func(e *Entry) {
		if e.Count < truth[e.Key] {
			t.Errorf("%s: estimate %d below truth %d", e.Key, e.Count, truth[e.Key])
		}
		if e.Count-e.Error > truth[e.Key] {
			t.Errorf("%s: estimate-error %d above truth %d", e.Key, e.Count-e.Error, truth[e.Key])
		}
	})
}

func TestHeavyHittersSurvive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := New(100, 60, nil)
	// 10 heavy keys at 5% each, the rest spread over 10k rare keys.
	for i := 0; i < 200000; i++ {
		var k string
		if rng.Float64() < 0.5 {
			k = fmt.Sprintf("heavy%d", rng.Intn(10))
		} else {
			k = fmt.Sprintf("rare%d", rng.Intn(10000))
		}
		c.Observe(k, float64(i)/1000)
	}
	top := c.Top(10)
	heavies := 0
	for _, e := range top {
		if len(e.Key) > 5 && e.Key[:5] == "heavy" {
			heavies++
		}
	}
	if heavies < 10 {
		t.Errorf("only %d/10 heavy hitters in top-10", heavies)
	}
}

func TestAdmissionFilterBlocksOneOffs(t *testing.T) {
	f := bloom.New(100000, 0.01)
	c := New(10, 60, f)
	for i := 0; i < 10; i++ {
		for j := 0; j < 5; j++ {
			c.Observe(fmt.Sprintf("stable%d", i), float64(i*5+j))
		}
	}
	// A flood of unique keys must not displace the stable set.
	for i := 0; i < 10000; i++ {
		if e := c.Observe(fmt.Sprintf("oneoff%d", i), 100+float64(i)); e != nil {
			t.Fatalf("one-off %d admitted on first sight", i)
		}
	}
	for i := 0; i < 10; i++ {
		if c.Get(fmt.Sprintf("stable%d", i)) == nil {
			t.Errorf("stable%d evicted by one-offs", i)
		}
	}
	if c.Dropped() == 0 {
		t.Error("dropped counter is zero")
	}
	// The second sighting of the same key is admitted.
	if e := c.Observe("oneoff42", 20101); e == nil {
		t.Error("second sighting rejected")
	}
}

func TestStateDiscardedOnEviction(t *testing.T) {
	c := New(1, 60, nil)
	e := c.Observe("first", 0)
	e.State = "payload"
	e2 := c.Observe("second", 1)
	if e2.State != nil {
		t.Errorf("state leaked across eviction: %v", e2.State)
	}
	if e2.InsertedAt != 1 {
		t.Errorf("InsertedAt = %f", e2.InsertedAt)
	}
}

func TestRateConvergesToArrivalRate(t *testing.T) {
	c := New(10, 10, nil)
	// 20 events/s for 60 s.
	var e *Entry
	for i := 0; i < 1200; i++ {
		e = c.Observe("steady", float64(i)*0.05)
	}
	if math.Abs(e.Rate-20)/20 > 0.15 {
		t.Errorf("rate = %.2f, want ~20", e.Rate)
	}
}

func TestRateDecays(t *testing.T) {
	c := New(10, 10, nil)
	var e *Entry
	for i := 0; i < 500; i++ {
		e = c.Observe("burst", float64(i)*0.05)
	}
	high := e.Rate
	// One observation long after the burst: the decayed estimate must
	// have dropped by roughly 2^(-100/10).
	e = c.Observe("burst", 25+100)
	if e.Rate > high/500 {
		t.Errorf("rate %.4f did not decay from %.2f", e.Rate, high)
	}
}

func TestRateAtDecaysIdleEntries(t *testing.T) {
	c := New(10, 10, nil)
	var e *Entry
	for i := 0; i < 400; i++ {
		e = c.Observe("idle", float64(i)*0.05) // 20/s for 20 s
	}
	stored := e.Rate
	live := c.RateAt(e, 20)
	if math.Abs(live-stored) > stored*0.01 {
		t.Errorf("RateAt just after the last observation strayed: %f vs %f", live, stored)
	}
	// Three half-lives later the read-side decay must report ~1/8.
	later := c.RateAt(e, 50)
	if later > live/6 || later < live/12 {
		t.Errorf("RateAt(+3 half-lives) = %f, want ~%f", later, live/8)
	}
	// The stored field must be untouched by reads.
	if e.Rate != stored {
		t.Errorf("stored rate mutated: %f", e.Rate)
	}
	// A time before the last update returns the stored value.
	if c.RateAt(e, 0) != e.Rate {
		t.Error("past time should clamp to stored rate")
	}
}

func TestSameInstantBurst(t *testing.T) {
	c := New(10, 60, nil)
	var e *Entry
	for i := 0; i < 100; i++ {
		e = c.Observe("instant", 5.0)
	}
	if e.Rate <= 0 || math.IsInf(e.Rate, 0) || math.IsNaN(e.Rate) {
		t.Errorf("rate = %f", e.Rate)
	}
}

func TestMinCount(t *testing.T) {
	c := New(3, 60, nil)
	if c.MinCount() != 0 {
		t.Error("min of empty cache")
	}
	c.Observe("a", 0)
	c.Observe("a", 0)
	c.Observe("b", 0)
	if c.MinCount() != 1 {
		t.Errorf("min = %d", c.MinCount())
	}
}

func TestHitsCounter(t *testing.T) {
	c := New(2, 60, nil)
	for i := 0; i < 7; i++ {
		c.Observe("x", float64(i))
	}
	if c.Hits() != 7 {
		t.Errorf("hits = %d", c.Hits())
	}
}

func TestTopNTruncation(t *testing.T) {
	c := New(10, 60, nil)
	for i := 0; i < 10; i++ {
		c.Observe(fmt.Sprintf("k%d", i), 0)
	}
	if got := len(c.Top(3)); got != 3 {
		t.Errorf("Top(3) len = %d", got)
	}
	if got := len(c.Top(0)); got != 10 {
		t.Errorf("Top(0) len = %d", got)
	}
	if got := len(c.Top(100)); got != 10 {
		t.Errorf("Top(100) len = %d", got)
	}
}

func TestDegenerateCapacity(t *testing.T) {
	c := New(0, 0, nil)
	if e := c.Observe("only", 0); e == nil {
		t.Fatal("capacity-1 cache rejected first key")
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}
