// Package spacesaving implements the Space-Saving algorithm of Metwally,
// Agrawal and El Abbadi (ICDT 2005) for tracking the top-k most frequent
// items in a stream with bounded memory — the basic tool of DNS
// Observatory (§2.2).
//
// Two departures from the textbook algorithm follow the paper:
//
//   - Each monitored object carries an exponentially decaying moving
//     average that estimates its transaction rate (hits per second), so
//     popularity reflects recent traffic rather than all-time counts.
//   - Before evicting the minimum entry for a never-seen key, an optional
//     admission filter (a Bloom filter) is consulted, so that a key must
//     be seen at least twice before it can displace a monitored object.
//     This shields the top list from incidental observations of rare keys.
//
// Evicted entries bequeath their count to the newcomer (the classic
// overestimation bound: error <= min count).
//
// Caches over key-disjoint partitions of one stream compose: Merge sums
// counts and errors per key and keeps the strongest entries, which is the
// standard parallel Space-Saving merge used by the sharded ingest engine.
//
// Concurrency: a Cache is single-owner — no internal locking; the
// engine goroutine that owns the shard is the only one that touches it.
// Cache health for the metrics layer (Len, MinCount, Evictions,
// Dropped) is therefore read by that same owner at window boundaries
// and published from there.
package spacesaving
