package observatory

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/tsv"
)

func shardedTestAggs() []Aggregation {
	// NoAdmitter everywhere: Bloom seeds are random per filter, so only
	// admitter-free aggregations are bit-for-bit reproducible. Capacities
	// exceed the distinct-key counts of the test stream so no Space-Saving
	// eviction occurs and sharded output must match serial exactly.
	return []Aggregation{
		{Name: "srvip", K: 200, Key: SrvIPKey, NoAdmitter: true},
		{Name: "qname", K: 800, Key: QNameKey, NoAdmitter: true},
		{Name: "qtype", K: 16, Key: QTypeKey, NoAdmitter: true},
		{Name: "aafqdn", K: 800, Key: AAFQDNKey, NoAdmitter: true},
		// srcsrv exercises the KeyBytes (buffer-built composite key) path
		// in both the serial and sharded engines.
		{Name: "srcsrv", K: 800, Key: SrcSrvKey, KeyBytes: SrcSrvKeyBytes, NoAdmitter: true},
	}
}

type shardedEvent struct {
	resolver, ns, qname string
	qtype               dnswire.Type
	now                 float64
}

func shardedTestEvents(n int) []shardedEvent {
	events := make([]shardedEvent, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, shardedEvent{
			resolver: fmt.Sprintf("192.0.2.%d", i%20+1),
			ns:       fmt.Sprintf("198.51.100.%d", i%50+1),
			qname:    fmt.Sprintf("h%d.example%d.com.", i%7, i%90),
			qtype:    dnswire.TypeA,
			now:      float64(i) * 0.05,
		})
	}
	return events
}

func snapKey(s *tsv.Snapshot) string { return fmt.Sprintf("%s@%d", s.Aggregation, s.Start) }

func sortSnaps(ss []*tsv.Snapshot) {
	sort.Slice(ss, func(i, j int) bool { return snapKey(ss[i]) < snapKey(ss[j]) })
}

func requireSnapsEqual(t *testing.T, want, got []*tsv.Snapshot) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("snapshot counts: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		a, b := want[i], got[i]
		if snapKey(a) != snapKey(b) {
			t.Fatalf("snapshot %d: %s vs %s", i, snapKey(a), snapKey(b))
		}
		if a.TotalBefore != b.TotalBefore || a.TotalAfter != b.TotalAfter {
			t.Fatalf("%s stats: %d/%d vs %d/%d", snapKey(a),
				a.TotalBefore, a.TotalAfter, b.TotalBefore, b.TotalAfter)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: rows %d vs %d", snapKey(a), len(a.Rows), len(b.Rows))
		}
		for j := range a.Rows {
			if a.Rows[j].Key != b.Rows[j].Key {
				t.Fatalf("%s row %d: %s vs %s", snapKey(a), j, a.Rows[j].Key, b.Rows[j].Key)
			}
			for c := range a.Rows[j].Values {
				if va, vb := a.Rows[j].Values[c], b.Rows[j].Values[c]; va != vb {
					t.Fatalf("%s row %s col %s: %v vs %v",
						snapKey(a), a.Rows[j].Key, a.Columns[c], va, vb)
				}
			}
		}
	}
}

// TestShardedMatchesSerial is the determinism contract: a fixed stream
// fed through the sharded engine must yield the same snapshots as the
// serial pipeline — keys partition across shards, every worker crosses
// window boundaries at the same item, and MergeParts reunites the rows.
func TestShardedMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	events := shardedTestEvents(5000)

	var serial []*tsv.Snapshot
	sp := New(cfg, shardedTestAggs(), func(s *tsv.Snapshot) { serial = append(serial, s) })
	for _, e := range events {
		sp.Ingest(sum(e.resolver, e.ns, e.qname, e.qtype), e.now)
	}
	sp.Flush()
	sortSnaps(serial)

	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {4, 2}, {4, 4}, {7, 3},
	} {
		t.Run(fmt.Sprintf("s%dw%d", tc.shards, tc.workers), func(t *testing.T) {
			var sharded []*tsv.Snapshot
			eng := NewSharded(
				ShardedConfig{Config: cfg, Shards: tc.shards, Workers: tc.workers, BatchSize: 64},
				shardedTestAggs(),
				func(s *tsv.Snapshot) { sharded = append(sharded, s) })
			for _, e := range events {
				eng.Ingest(sum(e.resolver, e.ns, e.qname, e.qtype), e.now)
			}
			eng.Close()
			sortSnaps(sharded)
			requireSnapsEqual(t, serial, sharded)
		})
	}
}

// TestShardedZeroCopyPath drives IngestShared with borrowed buffers and
// checks the output still matches the serial pipeline.
func TestShardedZeroCopyPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	events := shardedTestEvents(3000)

	var serial []*tsv.Snapshot
	sp := New(cfg, shardedTestAggs(), func(s *tsv.Snapshot) { serial = append(serial, s) })
	for _, e := range events {
		sp.Ingest(sum(e.resolver, e.ns, e.qname, e.qtype), e.now)
	}
	sp.Flush()
	sortSnaps(serial)

	var sharded []*tsv.Snapshot
	eng := NewSharded(ShardedConfig{Config: cfg, Shards: 4, Workers: 2, BatchSize: 32},
		shardedTestAggs(), func(s *tsv.Snapshot) { sharded = append(sharded, s) })
	for _, e := range events {
		buf := eng.Borrow()
		buf.Summary = *sum(e.resolver, e.ns, e.qname, e.qtype)
		eng.IngestShared(buf, e.now)
	}
	eng.Close()
	sortSnaps(sharded)
	requireSnapsEqual(t, serial, sharded)
}

// TestShardedConcurrentProducers hammers Ingest from several goroutines;
// run under -race. Snapshot contents depend on interleaving, so only
// aggregate invariants are checked.
func TestShardedConcurrentProducers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	var mu sync.Mutex
	var snaps []*tsv.Snapshot
	eng := NewSharded(ShardedConfig{Config: cfg, Shards: 4, Workers: 2, BatchSize: 16},
		shardedTestAggs(), func(s *tsv.Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		})

	const producers = 4
	const perProducer = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := sum("192.0.2.1", "198.51.100.1", "x.example.com.", dnswire.TypeA)
			for i := 0; i < perProducer; i++ {
				s.QName = fmt.Sprintf("h%d.example%d.com.", p, i%30)
				eng.Ingest(s, float64(i)*0.01)
			}
		}(p)
	}
	wg.Wait()
	if got := eng.Total(); got != producers*perProducer {
		t.Fatalf("Total() = %d, want %d", got, producers*perProducer)
	}
	eng.Close()
	var qnameRows int
	for _, s := range snaps {
		if s.Aggregation == "qname" {
			qnameRows += len(s.Rows)
			var hits float64
			for _, r := range s.Rows {
				hits += r.Values[0]
			}
			if uint64(hits) != s.TotalAfter {
				t.Fatalf("qname@%d: row hits %v != TotalAfter %d", s.Start, hits, s.TotalAfter)
			}
		}
	}
	if qnameRows == 0 {
		t.Fatal("no qname rows despite 8000 ingests")
	}
}

// TestShardedCallerMayReuseSummary checks Ingest deep-copies into the
// pool: mutating the summary after the call must not corrupt output.
func TestShardedCallerMayReuseSummary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	var snaps []*tsv.Snapshot
	eng := NewSharded(ShardedConfig{Config: cfg, Shards: 2, Workers: 2, BatchSize: 8},
		[]Aggregation{{Name: "qname", K: 50, Key: QNameKey, NoAdmitter: true}},
		func(s *tsv.Snapshot) { snaps = append(snaps, s) })
	s := sum("192.0.2.1", "198.51.100.1", "reused.example.com.", dnswire.TypeA)
	for i := 0; i < 1000; i++ {
		eng.Ingest(s, float64(i)*0.1)
		s.QName = "reused.example.com."
		s.AnswerTTLs = append(s.AnswerTTLs[:0], uint32(i))
	}
	eng.Close()
	var rows int
	for _, snap := range snaps {
		rows += len(snap.Rows)
		for _, r := range snap.Rows {
			if r.Key != "reused.example.com." {
				t.Fatalf("corrupted key %q", r.Key)
			}
		}
	}
	if rows == 0 {
		t.Fatal("no rows despite 1000 ingests")
	}
}

func TestShardedCloseIdempotent(t *testing.T) {
	eng := NewSharded(ShardedConfig{Config: DefaultConfig()},
		[]Aggregation{{Name: "srvip", K: 10, Key: SrvIPKey}}, nil)
	eng.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), 1)
	eng.Close()
	eng.Close() // must not panic or deadlock
	// Ingest after close is a no-op; a borrowed buffer is released too.
	eng.Ingest(sum("192.0.2.1", "198.51.100.1", "b.example.com.", dnswire.TypeA), 2)
	eng.IngestShared(eng.Borrow(), 3)
}

// TestShardedMergedTop checks the live-state accessors after Close: the
// merged per-shard caches must report every key with its exact count.
func TestShardedMergedTop(t *testing.T) {
	cfg := DefaultConfig()
	eng := NewSharded(ShardedConfig{Config: cfg, Shards: 4, Workers: 2},
		[]Aggregation{{Name: "qname", K: 100, Key: QNameKey, NoAdmitter: true}}, nil)
	counts := map[string]uint64{"a.com.": 30, "b.com.": 20, "c.com.": 10}
	i := 0
	for name, n := range counts {
		for j := uint64(0); j < n; j++ {
			eng.Ingest(sum("192.0.2.1", "198.51.100.1", name, dnswire.TypeA), float64(i))
			i++
		}
	}
	eng.Close()
	if eng.Caches("nope") != nil || eng.MergedTop("nope", 3) != nil {
		t.Fatal("unknown aggregation should return nil")
	}
	if got := len(eng.Caches("qname")); got != 4 {
		t.Fatalf("Caches: %d shards, want 4", got)
	}
	top := eng.MergedTop("qname", 3)
	if len(top) != 3 {
		t.Fatalf("MergedTop: %d entries, want 3", len(top))
	}
	for _, e := range top {
		if e.Count != counts[e.Key] {
			t.Errorf("%s: count %d, want %d", e.Key, e.Count, counts[e.Key])
		}
	}
	if top[0].Key != "a.com." || top[1].Key != "b.com." || top[2].Key != "c.com." {
		t.Errorf("order: %v %v %v", top[0].Key, top[1].Key, top[2].Key)
	}
}

// TestShardedShardCapacity pins the sizing rule: even K split plus slack.
func TestShardedShardCapacity(t *testing.T) {
	for _, tc := range []struct{ k, shards, want int }{
		{100, 1, 128},       // 100 + 12 + 16
		{100, 4, 44},        // 25 + 3 + 16
		{7, 4, 18},          // 2 + 0 + 16
		{100_000, 8, 14078}, // 12500 + 1562 + 16 — headroom over K/S
	} {
		if got := shardCapacity(tc.k, tc.shards); got != tc.want {
			t.Errorf("shardCapacity(%d, %d) = %d, want %d", tc.k, tc.shards, got, tc.want)
		}
	}
}
