package observatory

import (
	"strings"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

func statsAggs() []Aggregation {
	return []Aggregation{
		{Name: "srvip", K: 100, Key: SrvIPKey, NoAdmitter: true},
		{Name: "qname", K: 100, Key: QNameKey, NoAdmitter: true},
	}
}

func TestPipelineStats(t *testing.T) {
	p := New(DefaultConfig(), statsAggs(), nil)
	for i := 0; i < 10; i++ {
		p.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), float64(i))
	}
	for i := 0; i < 3; i++ {
		p.RecordRejected()
	}
	p.Flush()
	es := p.Stats()
	want := EngineStats{Ingested: 13, Accepted: 10, Rejected: 3}
	if es != want {
		t.Errorf("Stats() = %+v, want %+v", es, want)
	}
}

func TestParallelStatsAndQuarantine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	cfg.ChaosHook = func(s *sie.Summary) {
		if strings.HasPrefix(s.QName, "poison.") {
			panic("injected")
		}
	}
	var snaps []*tsv.Snapshot
	p := NewParallel(cfg, statsAggs(), func(s *tsv.Snapshot) { snaps = append(snaps, s) })
	for i := 0; i < 100; i++ {
		qname := "a.example.com."
		if i%10 == 0 {
			qname = "poison.example.com."
		}
		p.Ingest(sum("192.0.2.1", "198.51.100.1", qname, dnswire.TypeA), float64(i))
	}
	p.RecordRejected()
	p.Close()

	es := p.Stats()
	if es.Ingested != es.Accepted+es.Rejected+es.Shed {
		t.Errorf("accounting broken: %+v", es)
	}
	if es.Ingested != 101 || es.Rejected != 1 {
		t.Errorf("Stats() = %+v, want 101 ingested / 1 rejected", es)
	}
	// One panic per (worker, poisoned summary): 2 aggregations x 10.
	if es.Panics != 20 || es.Quarantined != 20 {
		t.Errorf("panics/quarantined = %d/%d, want 20/20", es.Panics, es.Quarantined)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots after quarantined panics")
	}
	// The poisoned key must be absent: its folds were abandoned.
	for _, s := range snaps {
		if s.Aggregation == "qname" && s.Find("poison.example.com.") != nil {
			t.Error("quarantined summary leaked into snapshot")
		}
	}
}

func TestShardedQuarantineKeepsWindowAlive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	cfg.ChaosHook = func(s *sie.Summary) {
		if strings.HasPrefix(s.QName, "poison.") {
			panic("injected")
		}
	}
	var snaps []*tsv.Snapshot
	eng := NewSharded(ShardedConfig{Config: cfg, Shards: 2, Workers: 2, BatchSize: 8},
		statsAggs(), func(s *tsv.Snapshot) { snaps = append(snaps, s) })
	// Two windows; poison some summaries in each.
	for i := 0; i < 200; i++ {
		qname := "a.example.com."
		if i%25 == 0 {
			qname = "poison.example.com."
		}
		eng.Ingest(sum("192.0.2.1", "198.51.100.1", qname, dnswire.TypeA), float64(i)*0.6)
	}
	eng.Close()

	es := eng.Stats()
	if es.Ingested != es.Accepted+es.Rejected+es.Shed {
		t.Errorf("accounting broken: %+v", es)
	}
	if es.Ingested != 200 || es.Accepted != 200 {
		t.Errorf("Stats() = %+v, want 200 ingested and accepted", es)
	}
	if es.Panics == 0 || es.Panics != es.Quarantined {
		t.Errorf("panics/quarantined = %d/%d, want equal and nonzero", es.Panics, es.Quarantined)
	}
	// Both windows ([0,60) and [60,120)) must emit for both aggregations.
	got := map[string]bool{}
	for _, s := range snaps {
		got[snapKey(s)] = true
	}
	for _, want := range []string{"srvip@0", "srvip@60", "qname@0", "qname@60"} {
		if !got[want] {
			t.Errorf("missing snapshot %s (windows: %v)", want, got)
		}
	}
}
