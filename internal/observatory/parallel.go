package observatory

import (
	"net/netip"
	"sync"

	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

// Parallel runs each aggregation's pipeline on its own goroutine, with
// summaries deep-copied once per Ingest and fanned out in batches;
// snapshot callbacks are serialized. It is the legacy fan-out, kept as a
// comparison baseline: throughput is capped by the heaviest aggregation
// and every Ingest pays a deep copy. Prefer Sharded, which partitions
// each aggregation's key space across workers and fans out pooled
// buffers instead.
//
// Create with NewParallel, feed with Ingest, and always Close (which
// flushes the final window).
type Parallel struct {
	workers  []*aggWorker
	suffixes *publicsuffix.List

	mu     sync.Mutex // serializes onSnapshot
	batch  []ingestItem
	closed bool

	m *engineMetrics // producers bump ingested/rejected, workers panics
}

type ingestItem struct {
	sum sie.Summary
	now float64
}

type aggWorker struct {
	eng  *Parallel
	cfg  *Config
	pipe *Pipeline
	in   chan []ingestItem
	done chan struct{}
}

// batchSize balances channel overhead against latency; windows are 60 s,
// so a few hundred transactions of delay is invisible.
const batchSize = 256

// NewParallel builds one single-aggregation pipeline per entry of aggs.
func NewParallel(cfg Config, aggs []Aggregation, onSnapshot func(*tsv.Snapshot)) *Parallel {
	p := &Parallel{suffixes: cfg.Features.Suffixes}
	p.m = newEngineMetrics(cfg.Metrics, "parallel")
	// The sub-pipelines must not publish: each would count the same
	// stream again under engine="serial". Only this engine's counters
	// (and per-agg gauges, which the legacy baseline skips) are visible.
	cfg.Metrics = nil
	// Likewise each sub-pipeline would run its own copy of the detection
	// layer over the same stream. The legacy baseline does not carry
	// detection; use the serial or sharded engine for it.
	cfg.Detect = nil
	emit := func(s *tsv.Snapshot) {
		if onSnapshot == nil {
			return
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		onSnapshot(s)
	}
	for _, a := range aggs {
		w := &aggWorker{
			eng:  p,
			pipe: New(cfg, []Aggregation{a}, emit),
			in:   make(chan []ingestItem, 4),
			done: make(chan struct{}),
		}
		w.cfg = &w.pipe.cfg
		p.workers = append(p.workers, w)
		go w.run()
	}
	return p
}

func (w *aggWorker) run() {
	defer close(w.done)
	for batch := range w.in {
		for i := range batch {
			w.ingestItem(&batch[i])
		}
	}
	w.pipe.Flush()
}

// ingestItem folds one summary into this worker's pipeline, recovering
// a panic by quarantining the summary for this aggregation: the item is
// skipped, counted, and the worker keeps consuming — the window stays
// alive.
func (w *aggWorker) ingestItem(it *ingestItem) {
	defer func() {
		if r := recover(); r != nil {
			w.eng.m.panics.Inc()
			w.eng.m.quarantined.Inc()
		}
	}()
	if hook := w.cfg.ChaosHook; hook != nil {
		hook(&it.sum)
	}
	w.pipe.Ingest(&it.sum, it.now)
}

// Ingest enqueues one summary. The summary is deep-copied; the caller
// may reuse it (and its slices) immediately.
func (p *Parallel) Ingest(sum *sie.Summary, now float64) {
	if p.closed {
		return
	}
	p.m.ingested.Inc()
	p.m.accepted.Inc()
	// Batch items are shared by every worker, so hashes must be memoized
	// before dispatch — workers only read them.
	sum.PrecomputeHashes(p.suffixes)
	p.batch = append(p.batch, ingestItem{sum: copySummary(sum), now: now})
	if len(p.batch) >= batchSize {
		p.dispatch()
	}
}

// RecordRejected accounts one transaction rejected before reaching the
// engine (malformed wire input the summarizer refused). Like Ingest it
// is producer-side and not safe for concurrent producers.
func (p *Parallel) RecordRejected() {
	p.m.ingested.Inc()
	p.m.rejected.Inc()
}

// Stats returns the engine's ingest accounting. The parallel engine
// only blocks (no shed policy), so Accepted = Ingested − Rejected.
// Stats reads the counters the engine publishes to its metrics
// registry, so the two views agree by construction.
func (p *Parallel) Stats() EngineStats { return p.m.stats() }

// dispatch hands the pending batch to every worker.
func (p *Parallel) dispatch() {
	if len(p.batch) == 0 {
		return
	}
	batch := p.batch
	p.batch = nil
	for _, w := range p.workers {
		w.in <- batch
	}
}

// Close flushes pending batches and final windows, then waits for all
// workers. Safe to call once.
func (p *Parallel) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.dispatch()
	for _, w := range p.workers {
		close(w.in)
	}
	for _, w := range p.workers {
		<-w.done
	}
}

// copySummary deep-copies the slices that the Summarizer reuses.
func copySummary(sum *sie.Summary) sie.Summary {
	out := *sum
	out.V4Addrs = append([]netip.Addr(nil), sum.V4Addrs...)
	out.V6Addrs = append([]netip.Addr(nil), sum.V6Addrs...)
	out.V4Strs = append([]string(nil), sum.V4Strs...)
	out.V6Strs = append([]string(nil), sum.V6Strs...)
	out.V4Hashes = append([]uint64(nil), sum.V4Hashes...)
	out.V6Hashes = append([]uint64(nil), sum.V6Hashes...)
	out.AnswerTTLs = append([]uint32(nil), sum.AnswerTTLs...)
	out.NSTTLs = append([]uint32(nil), sum.NSTTLs...)
	out.NSNames = append([]string(nil), sum.NSNames...)
	return out
}
