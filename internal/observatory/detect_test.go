package observatory

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dnsobservatory/internal/detect"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/tsv"
)

// detectTestConfig sizes the detection layer small enough that the test
// stream exercises evictions and NOD rotation. Determinism does not
// depend on generous capacities: partitions and Bloom seeds are fixed,
// so per-partition eviction order is a pure function of the sub-stream.
func detectTestConfig() *detect.Config {
	return &detect.Config{
		K:             40,
		NODK:          60,
		Capacity:      96,
		Partitions:    8,
		NODHorizonSec: 180,
		NODBuckets:    4,
	}
}

// encodeSnap renders a snapshot to its canonical TSV byte form.
func encodeSnap(t *testing.T, s *tsv.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("encode %s@%d: %v", s.Aggregation, s.Start, err)
	}
	return buf.Bytes()
}

// TestShardedDetectMatchesSerialBytes is the detection determinism
// contract: with identical detect configs, the sharded engine's
// detect_esld and detect_nod snapshots must be byte-identical to the
// serial pipeline's, for any worker/shard combination — including
// worker counts that do not divide the partition count.
func TestShardedDetectMatchesSerialBytes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	cfg.Detect = detectTestConfig()
	events := shardedTestEvents(6000)

	collect := func(snaps *[]*tsv.Snapshot) func(*tsv.Snapshot) {
		return func(s *tsv.Snapshot) {
			if s.Aggregation == detect.AggESLD || s.Aggregation == detect.AggNOD {
				*snaps = append(*snaps, s)
			}
		}
	}

	var serial []*tsv.Snapshot
	sp := New(cfg, shardedTestAggs(), collect(&serial))
	for _, e := range events {
		sp.Ingest(sum(e.resolver, e.ns, e.qname, e.qtype), e.now)
	}
	sp.Flush()
	sortSnaps(serial)
	if len(serial) == 0 {
		t.Fatal("serial pipeline emitted no detect snapshots")
	}
	serialBytes := make([][]byte, len(serial))
	for i, s := range serial {
		serialBytes[i] = encodeSnap(t, s)
	}

	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {4, 2}, {4, 4}, {7, 3}, {2, 5},
	} {
		t.Run(fmt.Sprintf("s%dw%d", tc.shards, tc.workers), func(t *testing.T) {
			var sharded []*tsv.Snapshot
			eng := NewSharded(
				ShardedConfig{Config: cfg, Shards: tc.shards, Workers: tc.workers, BatchSize: 64},
				shardedTestAggs(), collect(&sharded))
			for _, e := range events {
				eng.Ingest(sum(e.resolver, e.ns, e.qname, e.qtype), e.now)
			}
			eng.Close()
			sortSnaps(sharded)
			if len(sharded) != len(serial) {
				t.Fatalf("detect snapshots: serial %d, sharded %d", len(serial), len(sharded))
			}
			for i := range serial {
				if got := encodeSnap(t, sharded[i]); !bytes.Equal(serialBytes[i], got) {
					t.Fatalf("%s not byte-identical to serial:\nserial:\n%s\nsharded:\n%s",
						snapKey(serial[i]), serialBytes[i], got)
				}
			}
		})
	}
}

// TestShardedDetectVolumeSnapshotsUnchanged guards the regular
// aggregations against the detect slot: enabling detection must not
// perturb the volume snapshots.
func TestShardedDetectVolumeSnapshotsUnchanged(t *testing.T) {
	events := shardedTestEvents(3000)
	run := func(det *detect.Config) []*tsv.Snapshot {
		cfg := DefaultConfig()
		cfg.SkipFreshObjects = false
		cfg.Detect = det
		var snaps []*tsv.Snapshot
		eng := NewSharded(ShardedConfig{Config: cfg, Shards: 4, Workers: 2, BatchSize: 32},
			shardedTestAggs(), func(s *tsv.Snapshot) {
				if s.Aggregation != detect.AggESLD && s.Aggregation != detect.AggNOD {
					snaps = append(snaps, s)
				}
			})
		for _, e := range events {
			eng.Ingest(sum(e.resolver, e.ns, e.qname, e.qtype), e.now)
		}
		eng.Close()
		sortSnaps(snaps)
		return snaps
	}
	requireSnapsEqual(t, run(nil), run(detectTestConfig()))
}

// TestShardedDetectConcurrentProducersAccounting hammers a detecting
// sharded engine from several producers (run under -race) and checks
// the exact accounting identity afterwards: every accepted transaction
// was offered to the detector, and every eSLD observation is accounted
// as exactly one of first-seen, seen, or overflow — and equals the
// information-content hit count.
func TestShardedDetectConcurrentProducersAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	cfg.Detect = detectTestConfig()
	eng := NewSharded(ShardedConfig{Config: cfg, Shards: 4, Workers: 3, BatchSize: 16},
		shardedTestAggs(), nil)

	const producers = 4
	const perProducer = 3000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := sum("192.0.2.1", "198.51.100.1", "x.example.com.", dnswire.TypeA)
			for i := 0; i < perProducer; i++ {
				s.QName = fmt.Sprintf("w%d-%d.race%d.com.", p, i%90, i%120)
				eng.Ingest(s, float64(i)*0.01)
			}
		}(p)
	}
	wg.Wait()
	eng.Close()

	c := eng.Detector().Counters()
	if c.Offered != producers*perProducer {
		t.Fatalf("offered = %d, want %d", c.Offered, producers*perProducer)
	}
	if c.Observed != c.Offered {
		// Every test qname has an eSLD, so nothing is filtered.
		t.Fatalf("observed = %d, want %d", c.Observed, c.Offered)
	}
	if c.Observed != c.FirstSeen+c.Seen+c.Overflow {
		t.Fatalf("NOD identity broken: %d != %d+%d+%d",
			c.Observed, c.FirstSeen, c.Seen, c.Overflow)
	}
	if c.Observed != c.ICHits {
		t.Fatalf("IC identity broken: observed %d != ic hits %d", c.Observed, c.ICHits)
	}
}

// TestSerialDetectAccessor covers the serial pipeline's accessor and
// that detection stays off (nil) unless configured.
func TestSerialDetectAccessor(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg, shardedTestAggs(), nil)
	if p.Detector() != nil {
		t.Fatal("Detector() non-nil without cfg.Detect")
	}
	cfg.Detect = detectTestConfig()
	p = New(cfg, shardedTestAggs(), nil)
	if p.Detector() == nil {
		t.Fatal("Detector() nil with cfg.Detect set")
	}
	p.Ingest(sum("192.0.2.1", "198.51.100.1", "a.acc.com.", dnswire.TypeA), 1)
	p.Flush()
	if c := p.Detector().Counters(); c.Observed != 1 {
		t.Fatalf("observed = %d, want 1", c.Observed)
	}
}
