package observatory

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"dnsobservatory/internal/chaos"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

// requireRegistryMatchesStats asserts that what the engine published to
// its metrics registry is exactly what Stats() reports — the contract
// that /metrics never drifts from EngineStats.
func requireRegistryMatchesStats(t *testing.T, reg *metrics.Registry, es EngineStats) {
	t.Helper()
	for _, c := range []struct {
		family string
		want   uint64
	}{
		{MetricIngested, es.Ingested},
		{MetricAccepted, es.Accepted},
		{MetricRejected, es.Rejected},
		{MetricShed, es.Shed},
		{MetricPanics, es.Panics},
		{MetricQuarantined, es.Quarantined},
	} {
		if got := reg.SumCounter(c.family); got != c.want {
			t.Errorf("registry %s = %d, EngineStats says %d", c.family, got, c.want)
		}
	}
}

// soakTx builds one well-formed answered transaction with a varied
// query name, timestamped i*50ms after base.
func soakTx(t *testing.T, i int, base time.Time) *sie.Transaction {
	t.Helper()
	var q dnswire.Message
	q.ID = uint16(i)
	q.Flags.RecursionDesired = true
	qname := fmt.Sprintf("h%d.example%d.com.", i%7, i%90)
	q.Questions = append(q.Questions, dnswire.Question{
		Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassINET})
	qw, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := q
	r.Flags.Response = true
	r.Flags.Authoritative = true
	r.Answers = append(r.Answers, dnswire.RR{
		Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	rw, err := r.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.AddrFrom4([4]byte{198, 51, 100, byte(i%50 + 1)})
	dst := netip.AddrFrom4([4]byte{192, 0, 2, byte(i%20 + 1)})
	at := base.Add(time.Duration(i) * 50 * time.Millisecond)
	return &sie.Transaction{
		QueryPacket:    ipwire.AppendIPv4UDP(nil, src, dst, 4242, ipwire.DNSPort, 64, qw),
		ResponsePacket: ipwire.AppendIPv4UDP(nil, dst, src, ipwire.DNSPort, 4242, 64, rw),
		QueryTime:      at,
		ResponseTime:   at.Add(5 * time.Millisecond),
		SensorID:       1,
	}
}

// soakFeed replays n chaos-mangled transactions through the full ingest
// path (summarize → reject or ingest), mirroring dnsobs: zero and
// pre-base timestamps are rejected, everything else is clamped by the
// engine. Returns the highest stream time fed.
func soakFeed(t *testing.T, eng *Sharded, inj *chaos.Injector, n int) float64 {
	t.Helper()
	base := time.Unix(1600000000, 0)
	var summarizer sie.Summarizer
	summarizer.KeepUnparsableResponses = true
	var maxNow float64
	emit := inj.Transactions(func(tx *sie.Transaction) {
		if tx.QueryTime.IsZero() || tx.QueryTime.Before(base) {
			eng.RecordRejected()
			return
		}
		buf := eng.Borrow()
		if err := summarizer.Summarize(tx, &buf.Summary); err != nil {
			eng.Discard(buf)
			eng.RecordRejected()
			return
		}
		now := tx.QueryTime.Sub(base).Seconds()
		if now > maxNow {
			maxNow = now
		}
		eng.IngestShared(buf, now)
	})
	for i := 0; i < n; i++ {
		emit(soakTx(t, i, base))
	}
	inj.Flush()
	return maxNow
}

// requireFullWindowCoverage asserts that every aggregation produced
// exactly one snapshot for every window from 0 through the last window
// any aggregation emitted — chaos may shrink window contents but must
// never silently drop a window.
func requireFullWindowCoverage(t *testing.T, snaps map[string]map[int64]int) {
	t.Helper()
	var last int64 = -1
	for _, starts := range snaps {
		for s := range starts {
			if s > last {
				last = s
			}
		}
	}
	if last < 60 {
		t.Fatalf("soak produced too few windows (last start %d)", last)
	}
	for agg, starts := range snaps {
		for s := int64(0); s <= last; s += 60 {
			switch n := starts[s]; n {
			case 1:
			case 0:
				t.Errorf("%s: window %d silently dropped", agg, s)
			default:
				t.Errorf("%s: window %d emitted %d times", agg, s, n)
			}
		}
	}
}

// TestChaosSoakBlockPolicy soaks the sharded engine (default Block
// overload policy) against every stream fault class plus injected
// worker panics, and asserts the ingest accounting invariant and that
// no window is ever silently dropped. Run under -race.
func TestChaosSoakBlockPolicy(t *testing.T) {
	cfg := chaos.Uniform(0.02, 42)
	cfg.PanicRate = 0.002
	inj := chaos.New(cfg)

	econf := DefaultConfig()
	econf.SkipFreshObjects = false
	econf.ChaosHook = inj.PanicHook
	reg := metrics.NewRegistry()
	econf.Metrics = reg
	inj.Instrument(reg)

	snaps := map[string]map[int64]int{}
	eng := NewSharded(ShardedConfig{Config: econf, Shards: 4, Workers: 2, BatchSize: 32},
		shardedTestAggs(),
		func(s *tsv.Snapshot) {
			if snaps[s.Aggregation] == nil {
				snaps[s.Aggregation] = map[int64]int{}
			}
			snaps[s.Aggregation][s.Start]++
		})

	soakFeed(t, eng, inj, 12000) // 600 simulated seconds
	eng.Close()

	es := eng.Stats()
	if es.Ingested != es.Accepted+es.Rejected+es.Shed {
		t.Errorf("accounting broken: ingested %d != accepted %d + rejected %d + shed %d",
			es.Ingested, es.Accepted, es.Rejected, es.Shed)
	}
	if es.Shed != 0 {
		t.Errorf("block policy shed %d batches", es.Shed)
	}
	if es.Rejected == 0 {
		t.Error("chaos stream produced no rejections (faults not reaching the summarizer?)")
	}
	if es.Panics == 0 {
		t.Error("no injected panics recovered (PanicHook not wired?)")
	}
	if es.Panics != es.Quarantined {
		t.Errorf("panics %d != quarantined %d", es.Panics, es.Quarantined)
	}
	cs := inj.Stats()
	if cs.Total() == 0 {
		t.Fatal("injector fired no faults")
	}
	requireRegistryMatchesStats(t, reg, es)
	if got := reg.SumCounter("dnsobs_chaos_injected_total"); got != cs.Total() {
		t.Errorf("registry chaos injections = %d, injector says %d", got, cs.Total())
	}
	if reg.Sum(MetricTopkOccupancy) == 0 {
		t.Error("per-aggregation occupancy gauges never published")
	}
	requireFullWindowCoverage(t, snaps)
}

// TestChaosSoakShedPolicy forces overload (1-slot queues, 1-item
// batches, a slow hook) under the Shed policy and asserts shedding is
// accounted — the invariant must hold with Shed > 0 — and that all
// aggregations emit the same set of windows. Run under -race.
func TestChaosSoakShedPolicy(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 7}) // no faults; overload is the fault

	econf := DefaultConfig()
	econf.SkipFreshObjects = false
	var hooked atomic.Uint64
	econf.ChaosHook = func(*sie.Summary) {
		if hooked.Add(1)%8 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}

	reg := metrics.NewRegistry()
	econf.Metrics = reg

	snaps := map[string]map[int64]int{}
	eng := NewSharded(ShardedConfig{
		Config: econf, Shards: 2, Workers: 2,
		BatchSize: 1, QueueLen: 1, Overload: Shed,
	}, shardedTestAggs(), func(s *tsv.Snapshot) {
		if snaps[s.Aggregation] == nil {
			snaps[s.Aggregation] = map[int64]int{}
		}
		snaps[s.Aggregation][s.Start]++
	})

	soakFeed(t, eng, inj, 6000)
	eng.Close()

	es := eng.Stats()
	if es.Ingested != es.Accepted+es.Rejected+es.Shed {
		t.Errorf("accounting broken: ingested %d != accepted %d + rejected %d + shed %d",
			es.Ingested, es.Accepted, es.Rejected, es.Shed)
	}
	requireRegistryMatchesStats(t, reg, es)
	if es.Shed == 0 {
		t.Skip("overload never triggered on this machine; nothing to assert")
	}
	// Shedding drops batches, never windows: whatever windows survived
	// must be identical across aggregations and emitted exactly once.
	var ref map[int64]int
	var refAgg string
	for agg, starts := range snaps {
		if ref == nil {
			ref, refAgg = starts, agg
			continue
		}
		if len(starts) != len(ref) {
			t.Fatalf("window sets differ: %s has %d, %s has %d", refAgg, len(ref), agg, len(starts))
		}
		for s, n := range starts {
			if n != 1 || ref[s] != 1 {
				t.Fatalf("window %d: emitted %d times for %s, %d for %s", s, n, agg, ref[s], refAgg)
			}
		}
	}
}
