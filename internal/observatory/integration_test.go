package observatory_test

// End-to-end integration: synthetic traffic is serialized to an
// SIE-style framed stream, read back, summarized, pushed through the
// pipeline, persisted to a TSV store, and time-aggregated — the full
// dnsgen | dnsobs path as a single test.

import (
	"bytes"
	"io"
	"testing"

	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/tsv"
)

func TestStreamToStorePipeline(t *testing.T) {
	// 1. Generate and serialize.
	simCfg := simnet.DefaultConfig()
	simCfg.Duration = 150
	simCfg.QPS = 400
	simCfg.Resolvers = 40
	simCfg.SLDs = 300
	var stream bytes.Buffer
	w := sie.NewWriter(&stream)
	var writeErr error
	stats := simnet.New(simCfg).Run(func(tx *sie.Transaction) {
		if writeErr == nil {
			writeErr = w.Write(tx)
		}
	})
	if writeErr != nil {
		t.Fatal(writeErr)
	}
	if w.Count() != stats.Transactions {
		t.Fatalf("wrote %d, stats %d", w.Count(), stats.Transactions)
	}

	// 2. Read back and observe.
	store, err := tsv.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var lastStart int64 = -1
	var putErr error
	pipe := observatory.New(observatory.DefaultConfig(),
		[]observatory.Aggregation{
			{Name: "srvip", K: 500, Key: observatory.SrvIPKey},
			{Name: "qtype", K: 32, Key: observatory.QTypeKey, NoAdmitter: true},
		},
		func(s *tsv.Snapshot) {
			if putErr == nil {
				putErr = store.Put(s)
				lastStart = s.Start
			}
		})
	r := sie.NewReader(&stream)
	var summarizer sie.Summarizer
	var tx sie.Transaction
	var sum sie.Summary
	var n uint64
	for {
		err := r.Read(&tx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := summarizer.Summarize(&tx, &sum); err != nil {
			t.Fatal(err)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(simCfg.Start).Seconds())
		n++
	}
	pipe.Flush()
	if putErr != nil {
		t.Fatal(putErr)
	}
	if n != stats.Transactions {
		t.Fatalf("read %d of %d", n, stats.Transactions)
	}

	// 3. The store has minutely files; the cascade is a no-op for an
	// open window and produces nothing yet at 150 s... but after
	// pretending time advanced it folds them into a decaminutely file.
	starts, err := store.List("srvip", tsv.Minutely)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 2 {
		t.Fatalf("minutely files: %v", starts)
	}
	if err := store.Cascade("srvip", lastStart+600); err != nil {
		t.Fatal(err)
	}
	deca, err := store.List("srvip", tsv.Decaminutely)
	if err != nil {
		t.Fatal(err)
	}
	if len(deca) == 0 {
		t.Fatal("cascade produced no decaminutely file")
	}
	agg, err := store.Get("srvip", tsv.Decaminutely, deca[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Rows) == 0 || agg.TotalBefore == 0 {
		t.Fatalf("aggregate: %d rows, %d before", len(agg.Rows), agg.TotalBefore)
	}

	// 4. Sanity: the qtype aggregation saw A queries. The first window
	// is empty by design — §2.4 skips objects that have not yet survived
	// a full window — so check the second one.
	qstarts, err := store.List("qtype", tsv.Minutely)
	if err != nil || len(qstarts) < 2 {
		t.Fatalf("qtype files: %v %v", qstarts, err)
	}
	first, err := store.Get("qtype", tsv.Minutely, qstarts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) != 0 {
		t.Errorf("first window should skip fresh objects, has %d rows", len(first.Rows))
	}
	qs, err := store.Get("qtype", tsv.Minutely, qstarts[1])
	if err != nil {
		t.Fatal(err)
	}
	if qs.Find("A") == nil {
		t.Error("qtype snapshot missing A")
	}
}
