package observatory

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnsobservatory/internal/detect"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/spacesaving"
	"dnsobservatory/internal/tsv"
)

// Sharded is the key-hash-sharded ingest engine — the production shape
// for a 200 k tx/s feed (paper §2, §3.1). Instead of fanning the whole
// stream to one goroutine per aggregation (see Parallel) it:
//
//   - extracts every aggregation's key exactly once per summary and
//     hashes it to one of S shards, so each worker runs an independent
//     spacesaving.Cache (capacity ⌈K/S⌉ + slack) plus Bloom admitter per
//     shard per aggregation and carries 1/S of every aggregation's load
//     — throughput is no longer capped by the heaviest aggregation;
//   - fans summaries out through sync.Pool-backed, reference-counted
//     sie.Shared buffers released when the last worker finishes its
//     batch, eliminating the per-Ingest deep copy of the legacy path;
//   - merges per-shard state into one Top-k snapshot per aggregation at
//     each window boundary (the standard parallel Space-Saving merge:
//     key partitions are disjoint, so the union is exact and the
//     overestimation bound of each row is its own shard's min count).
//
// Every worker sees every batch and crosses window boundaries at the
// same item, so the merged snapshots are deterministic for a fixed input
// order. Ingest is safe for concurrent producers; snapshot callbacks are
// serialized on the merger goroutine. Always Close (it flushes the final
// window).
type Sharded struct {
	cfg    Config
	aggs   []Aggregation
	aggIdx map[string]int
	shards int
	// slots is the per-item slot count in a batch: one per aggregation,
	// plus one trailing detect slot when the detection layer is on.
	slots      int
	det        *detect.Detector
	overload   OverloadPolicy
	workers    []*shardWorker
	pool       *sie.SummaryPool
	batchPool  sync.Pool
	merges     chan *shardDump
	mergeDone  chan struct{}
	onSnapshot func(*tsv.Snapshot)

	mu     sync.Mutex
	cur    *shardBatch
	closed bool
	total  uint64

	// Ingest accounting (see EngineStats). Counters are atomic: workers
	// bump panic counters concurrently with producers bumping the rest.
	m *engineMetrics
}

// OverloadPolicy selects what dispatch does when a worker queue is full.
type OverloadPolicy int

const (
	// Block applies backpressure: Ingest waits for the slowest worker.
	// The default, and the right choice when the producer can stall
	// (offline replay, a file, an upstream with its own buffering).
	Block OverloadPolicy = iota
	// Shed drops the whole pending batch when any worker queue is full,
	// counting every dropped summary in Stats().Shed. The right choice
	// for a live feed that must never stall the capture path. Batches
	// are shed atomically across workers, so all workers still observe
	// identical batch sequences and window boundaries.
	Shed
)

// ShardedConfig tunes the sharded engine on top of the pipeline Config.
type ShardedConfig struct {
	Config
	// Shards is the number of key-hash shards per aggregation. 0 means
	// one per worker. Capped at 1024.
	Shards int
	// Workers is the number of shard worker goroutines. 0 means
	// GOMAXPROCS capped at 16. Workers above Shards would idle and are
	// clamped down.
	Workers int
	// BatchSize is the fan-out batch length (default 256). Windows are
	// 60 s, so a few hundred transactions of delay is invisible.
	BatchSize int
	// Overload selects the bounded-queue policy when workers fall
	// behind: Block (default) applies backpressure, Shed drops batches
	// with accounting.
	Overload OverloadPolicy
	// QueueLen is the per-worker batch queue depth (default 4). With
	// Overload == Shed it bounds how much work can be in flight before
	// dispatch starts dropping.
	QueueLen int
}

// shardBatch carries up to BatchSize summaries with their pre-extracted
// keys. Keys live concatenated in one shared byte buffer: for item i and
// aggregation a, slot j = i*len(aggs)+a, the key is
// keyBuf[ends[j-1]:ends[j]] (ends[-1] = 0) and meta[j] is 0 when the key
// function filtered the item out, else the shard index + 1. One buffer
// instead of per-slot strings means composite keys (srcsrv) are built
// without allocating, and recycling a batch never needs to clear string
// pointers. Batches are pooled and recycled by whichever worker
// finishes last.
type shardBatch struct {
	refs   atomic.Int32
	sums   []*sie.Shared
	nows   []float64
	keyBuf []byte
	ends   []uint32
	meta   []uint16
}

// key returns slot j's key bytes.
func (b *shardBatch) key(j int) []byte {
	start := uint32(0)
	if j > 0 {
		start = b.ends[j-1]
	}
	return b.keyBuf[start:b.ends[j]]
}

// shardDump is one worker's contribution to one window's snapshots.
type shardDump struct {
	windowStart float64
	parts       []shardPart // indexed like aggs
	// det holds the detection window parts of the partitions this worker
	// owns (empty when detection is off).
	det []detect.WindowPart
}

type shardPart struct {
	rows       []tsv.Row
	seenBefore uint64
	seenAfter  uint64
	// Cache-health contribution of this worker's shards, collected at
	// dump time when the worker has exclusive access; the merger sums
	// the parts and publishes one value per aggregation, so per-agg
	// metrics never race with worker ingest.
	occupancy int
	minCount  uint64 // max over shards: the worst-case bound
	evictions uint64 // delta since the previous window
	dropped   uint64 // delta since the previous window
}

type shardWorker struct {
	id   int
	eng  *Sharded
	in   chan *shardBatch
	done chan struct{}
	// states[a][l] is the state of shard l*workers+id of aggregation a.
	states      [][]*aggState
	windowStart float64
	started     bool
}

// shardCapacity sizes one shard's Space-Saving cache: an even split of K
// plus slack for the statistical imbalance of hash partitioning.
func shardCapacity(k, shards int) int {
	base := (k + shards - 1) / shards
	return base + base/8 + 16
}

// hashKey is FNV-1a; allocation-free and stable, so a key always lands
// on the same shard regardless of whether it arrives as a string or as
// bytes.
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hashKeyBytes is hashKey over a byte slice (identical output for
// identical bytes).
func hashKeyBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// NewSharded builds the sharded engine. onSnapshot may be nil; when set
// it receives every window's merged snapshot per aggregation, serialized
// on one goroutine. It must not call back into the engine.
func NewSharded(cfg ShardedConfig, aggs []Aggregation, onSnapshot func(*tsv.Snapshot)) *Sharded {
	cfg.Config.withDefaults()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 16 {
			workers = 16
		}
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = workers
	}
	if shards > 1024 {
		shards = 1024
	}
	if workers > shards {
		workers = shards
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 256
	}
	queue := cfg.QueueLen
	if queue <= 0 {
		queue = 4
	}
	s := &Sharded{
		cfg:        cfg.Config,
		aggs:       aggs,
		aggIdx:     make(map[string]int, len(aggs)),
		shards:     shards,
		overload:   cfg.Overload,
		pool:       sie.NewSummaryPool(),
		merges:     make(chan *shardDump, workers),
		mergeDone:  make(chan struct{}),
		onSnapshot: onSnapshot,
	}
	s.m = newEngineMetrics(cfg.Config.Metrics, "sharded")
	for i, a := range aggs {
		s.aggIdx[a.Name] = i
	}
	nAggs := len(aggs)
	s.slots = nAggs
	if cfg.Config.Detect != nil {
		dc := *cfg.Config.Detect
		if dc.Metrics == nil {
			dc.Metrics = cfg.Config.Metrics
		}
		s.det = detect.New(dc)
		s.slots++
	}
	nSlots := s.slots
	s.batchPool.New = func() any {
		return &shardBatch{
			sums:   make([]*sie.Shared, 0, batch),
			nows:   make([]float64, 0, batch),
			keyBuf: make([]byte, 0, batch*nSlots*16),
			ends:   make([]uint32, 0, batch*nSlots),
			meta:   make([]uint16, 0, batch*nSlots),
		}
	}
	s.cur = s.batchPool.Get().(*shardBatch)
	for id := 0; id < workers; id++ {
		w := &shardWorker{
			id:     id,
			eng:    s,
			in:     make(chan *shardBatch, queue),
			done:   make(chan struct{}),
			states: make([][]*aggState, nAggs),
		}
		for a, agg := range aggs {
			capPer := shardCapacity(agg.K, shards)
			for sh := id; sh < shards; sh += workers {
				w.states[a] = append(w.states[a], newAggState(agg, &s.cfg, capPer))
			}
		}
		s.workers = append(s.workers, w)
		go w.run()
	}
	if reg := s.m.reg; reg != nil {
		reg.GaugeFunc(MetricQueueDepth, "batches queued across shard workers", func() float64 {
			var n int
			for _, w := range s.workers {
				n += len(w.in)
			}
			return float64(n)
		}, "engine", "sharded")
	}
	go s.mergeLoop()
	return s
}

// Workers returns the number of shard worker goroutines.
func (s *Sharded) Workers() int { return len(s.workers) }

// Detector returns the attached detection layer, or nil when
// Config.Detect was unset. Read its counters only after Close.
func (s *Sharded) Detector() *detect.Detector { return s.det }

// Shards returns the number of key-hash shards per aggregation.
func (s *Sharded) Shards() int { return s.shards }

// Total returns the number of summaries ingested so far.
func (s *Sharded) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Ingest enqueues one summary. The summary is copied into a pooled
// buffer; the caller may reuse it (and its slices) immediately. Safe for
// concurrent producers.
func (s *Sharded) Ingest(sum *sie.Summary, now float64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	ps := s.pool.Get(int32(len(s.workers)))
	ps.CopyFrom(sum)
	s.add(ps, now)
	s.mu.Unlock()
}

// Borrow returns a pooled summary buffer for the zero-copy ingest path:
// fill &buf.Summary directly (e.g. with Summarizer.Summarize, whose
// slice-reuse contract keeps warm buffers allocation-free) and hand it
// to IngestShared. Each Borrow must be matched by exactly one
// IngestShared or Discard call.
func (s *Sharded) Borrow() *sie.Shared {
	return s.pool.Get(int32(len(s.workers)))
}

// IngestShared enqueues a borrowed buffer without copying it. The caller
// must not touch the buffer afterwards. Safe for concurrent producers.
func (s *Sharded) IngestShared(ps *sie.Shared, now float64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.Discard(ps)
		return
	}
	s.add(ps, now)
	s.mu.Unlock()
}

// Discard releases a borrowed buffer that will not be ingested.
func (s *Sharded) Discard(ps *sie.Shared) {
	for i := 0; i < len(s.workers); i++ {
		ps.Release()
	}
}

// add appends one pooled summary to the pending batch, extracting and
// hashing every aggregation's key exactly once. Caller holds s.mu.
func (s *Sharded) add(ps *sie.Shared, now float64) {
	b := s.cur
	b.sums = append(b.sums, ps)
	b.nows = append(b.nows, now)
	sum := &ps.Summary
	// Memoize feature hashes here, on the single dispatcher, before the
	// buffer is frozen and fanned out to concurrently-reading workers.
	sum.PrecomputeHashes(s.cfg.Features.Suffixes)
	for i := range s.aggs {
		start := len(b.keyBuf)
		var ok bool
		if kb := s.aggs[i].KeyBytes; kb != nil {
			b.keyBuf, ok = kb(sum, b.keyBuf)
		} else {
			var key string
			if key, ok = s.aggs[i].Key(sum); ok {
				b.keyBuf = append(b.keyBuf, key...)
			}
		}
		if !ok {
			b.keyBuf = b.keyBuf[:start]
			b.ends = append(b.ends, uint32(start))
			b.meta = append(b.meta, 0)
			continue
		}
		b.ends = append(b.ends, uint32(len(b.keyBuf)))
		b.meta = append(b.meta, uint16(hashKeyBytes(b.keyBuf[start:])%uint64(s.shards))+1)
	}
	if s.det != nil {
		// The trailing detect slot: eSLD key bytes plus the detector's
		// own partition index (NOT the shard index — detect partitions
		// are fixed so serial and sharded merges stay byte-identical).
		start := len(b.keyBuf)
		kb, part, ok := s.det.AppendKey(sum, b.keyBuf)
		b.keyBuf = kb
		if ok {
			b.ends = append(b.ends, uint32(len(b.keyBuf)))
			b.meta = append(b.meta, uint16(part)+1)
		} else {
			b.ends = append(b.ends, uint32(start))
			b.meta = append(b.meta, 0)
		}
	}
	s.total++
	s.m.ingested.Inc()
	if len(b.sums) >= cap(b.sums) {
		s.dispatchLocked()
	}
}

// dispatchLocked hands the pending batch to every worker, or sheds it
// whole under the Shed overload policy when any worker queue is full.
// Shedding is all-or-nothing per batch so every worker still sees an
// identical batch sequence (the invariant window merging relies on).
// Caller holds s.mu.
func (s *Sharded) dispatchLocked() {
	b := s.cur
	if len(b.sums) == 0 {
		return
	}
	if s.overload == Shed {
		// Only this dispatcher fills the queues, so a below-capacity
		// check here guarantees the sends below do not block.
		for _, w := range s.workers {
			if len(w.in) == cap(w.in) {
				s.m.shed.Add(uint64(len(b.sums)))
				for _, ps := range b.sums {
					s.Discard(ps)
				}
				clear(b.sums)
				b.sums = b.sums[:0]
				b.nows = b.nows[:0]
				b.keyBuf = b.keyBuf[:0]
				b.ends = b.ends[:0]
				b.meta = b.meta[:0]
				return
			}
		}
	}
	s.m.accepted.Add(uint64(len(b.sums)))
	s.cur = s.batchPool.Get().(*shardBatch)
	b.refs.Store(int32(len(s.workers)))
	for _, w := range s.workers {
		w.in <- b
	}
}

// RecordRejected accounts one transaction rejected before reaching the
// engine (malformed wire input the summarizer refused).
func (s *Sharded) RecordRejected() {
	s.m.ingested.Inc()
	s.m.rejected.Inc()
}

// Stats returns the engine's ingest accounting. Once the stream has
// been dispatched (after Close, or any moment no partial batch is
// pending), Ingested = Accepted + Rejected + Shed. Stats reads the
// counters the engine publishes to its metrics registry, so the two
// views agree by construction.
func (s *Sharded) Stats() EngineStats { return s.m.stats() }

// recycleBatch clears a fully-processed batch (dropping its references
// to summaries) and returns it to the pool. The key buffer holds no
// pointers, so truncation is enough.
func (s *Sharded) recycleBatch(b *shardBatch) {
	clear(b.sums)
	b.sums = b.sums[:0]
	b.nows = b.nows[:0]
	b.keyBuf = b.keyBuf[:0]
	b.ends = b.ends[:0]
	b.meta = b.meta[:0]
	s.batchPool.Put(b)
}

// Close flushes pending batches and the final partial window, waits for
// all workers and the snapshot merger, and releases every pooled buffer.
// Safe to call once; later Ingests are no-ops.
func (s *Sharded) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.dispatchLocked()
	s.mu.Unlock()
	for _, w := range s.workers {
		close(w.in)
	}
	for _, w := range s.workers {
		<-w.done
	}
	close(s.merges)
	<-s.mergeDone
}

// Caches returns the live per-shard Space-Saving caches of an
// aggregation (shard order), or nil if it does not exist. Like
// Pipeline.Cache this reads live state: only use it when no ingest is in
// flight (typically after Close).
func (s *Sharded) Caches(name string) []*spacesaving.Cache {
	a, ok := s.aggIdx[name]
	if !ok {
		return nil
	}
	caches := make([]*spacesaving.Cache, s.shards)
	for _, w := range s.workers {
		for l, st := range w.states[a] {
			caches[l*len(s.workers)+w.id] = st.cache
		}
	}
	return caches
}

// MergedTop merges the per-shard caches of an aggregation into a single
// top-n list (spacesaving.Merge; exact because shards partition the key
// space). Same liveness caveat as Caches.
func (s *Sharded) MergedTop(name string, n int) []*spacesaving.Entry {
	caches := s.Caches(name)
	if caches == nil {
		return nil
	}
	return spacesaving.Merge(n, caches...)
}

// run is the worker loop: process every batch, then flush the final
// window when the engine closes.
func (w *shardWorker) run() {
	defer close(w.done)
	for b := range w.in {
		w.process(b)
		if b.refs.Add(-1) == 0 {
			w.eng.recycleBatch(b)
		}
	}
	if w.started {
		w.dumpWindow()
	}
}

// process folds one batch into this worker's shards. Every worker scans
// the whole batch (the scan is a cheap modulo filter per item×agg;
// feature accumulation, the expensive part, runs only on the owner), so
// all workers observe identical window boundaries. A now earlier than
// the current window (reordered or backdated input) is clamped to the
// window start — identically on every worker, since they see the same
// batch sequence.
func (w *shardWorker) process(b *shardBatch) {
	win := w.eng.cfg.WindowSec
	for i, now := range b.nows {
		if !w.started {
			w.windowStart = now - mod(now, win)
			w.started = true
		}
		if now < w.windowStart {
			now = w.windowStart
		}
		for now >= w.windowStart+win {
			w.dumpWindow()
			w.windowStart += win
		}
		w.processItem(b, i, now)
		b.sums[i].Release()
	}
}

// processItem folds one summary into this worker's shards, recovering a
// panic (from corrupt data or an injected fault) by quarantining the
// summary: this worker's contribution is abandoned and counted, every
// other worker and every later summary proceeds, and the window stays
// alive.
func (w *shardWorker) processItem(b *shardBatch, i int, now float64) {
	defer func() {
		if r := recover(); r != nil {
			w.eng.m.panics.Inc()
			w.eng.m.quarantined.Inc()
		}
	}()
	nAggs := len(w.eng.aggs)
	nWorkers := len(w.eng.workers)
	det := w.eng.det
	if w.id == 0 {
		// Worker 0 keeps the before-filtering count for every
		// aggregation (it sees every item; counting it once keeps the
		// merged TotalBefore identical to the serial pipeline's).
		for a := 0; a < nAggs; a++ {
			w.states[a][0].seenBefore++
		}
		if det != nil {
			// Worker 0 always owns detect partition 0, where the
			// detector keeps its pre-filter count.
			det.RecordOffered()
		}
	}
	sum := &b.sums[i].Summary
	if hook := w.eng.cfg.ChaosHook; hook != nil {
		hook(sum)
	}
	base := i * w.eng.slots
	for a := 0; a < nAggs; a++ {
		m := b.meta[base+a]
		if m == 0 {
			continue
		}
		shard := int(m - 1)
		if shard%nWorkers != w.id {
			continue
		}
		w.states[a][shard/nWorkers].observeBytes(b.key(base+a), sum, now, &w.eng.cfg)
	}
	if det != nil {
		if m := b.meta[base+nAggs]; m != 0 {
			part := int(m - 1)
			if part%nWorkers == w.id {
				det.ObservePartition(part, b.key(base+nAggs), sum, now)
			}
		}
	}
}

// dumpWindow ships this worker's share of the closing window to the
// merger and resets its window state. A panic while collecting rows
// (corrupt feature state) is recovered and counted; the dump — possibly
// missing the aggregations after the panic point — is still sent, so
// the merger always receives one dump per worker per window and no
// window is ever silently dropped.
func (w *shardWorker) dumpWindow() {
	d := &shardDump{windowStart: w.windowStart, parts: make([]shardPart, len(w.eng.aggs))}
	windowEnd := w.windowStart + w.eng.cfg.WindowSec
	func() {
		defer func() {
			if r := recover(); r != nil {
				w.eng.m.panics.Inc()
			}
		}()
		for a := range w.eng.aggs {
			part := &d.parts[a]
			for _, st := range w.states[a] {
				part.rows = st.windowRows(part.rows, &w.eng.cfg, w.windowStart, windowEnd)
				part.seenBefore += st.seenBefore
				part.seenAfter += st.seenAfter
				part.occupancy += st.cache.Len()
				if mc := st.cache.MinCount(); mc > part.minCount {
					part.minCount = mc
				}
				ev, dr := st.cache.Evictions(), st.cache.Dropped()
				part.evictions += ev - st.lastEvict
				part.dropped += dr - st.lastDropped
				st.lastEvict, st.lastDropped = ev, dr
				st.resetWindow()
			}
		}
		if det := w.eng.det; det != nil {
			nWorkers := len(w.eng.workers)
			for p := w.id; p < det.Partitions(); p += nWorkers {
				d.det = append(d.det, det.CollectWindow(p, w.windowStart, windowEnd))
			}
		}
	}()
	w.eng.merges <- d
}

// mergeLoop collects the workers' dumps; once a window has one dump per
// worker it merges them into final snapshots. Workers emit windows in
// order and the channel is FIFO, so windows complete in order too. Any
// window still partial when the engine closes (a worker died before
// contributing — impossible under normal supervision, which always
// sends a dump, but defended against anyway) is flushed from whatever
// dumps arrived rather than dropped.
func (s *Sharded) mergeLoop() {
	defer close(s.mergeDone)
	pending := make(map[float64][]*shardDump)
	for d := range s.merges {
		dumps := append(pending[d.windowStart], d)
		if len(dumps) < len(s.workers) {
			pending[d.windowStart] = dumps
			continue
		}
		delete(pending, d.windowStart)
		s.emitWindow(d.windowStart, dumps)
	}
	starts := make([]float64, 0, len(pending))
	for ws := range pending {
		starts = append(starts, ws)
	}
	sort.Float64s(starts)
	for _, ws := range starts {
		s.emitWindow(ws, pending[ws])
	}
}

// emitWindow merges one window's per-shard parts into one snapshot per
// aggregation, delivers them to the callback, and publishes the summed
// per-aggregation cache health collected by the workers at dump time.
func (s *Sharded) emitWindow(windowStart float64, dumps []*shardDump) {
	start := time.Now()
	defer func() { s.m.flush.Observe(time.Since(start).Seconds()) }()
	cols, kinds := snapshotSchema()
	parts := make([]*tsv.Snapshot, len(dumps))
	for a, agg := range s.aggs {
		if reg := s.m.reg; reg != nil {
			var occupancy int
			var minCount, evictions, dropped uint64
			for _, d := range dumps {
				p := &d.parts[a]
				occupancy += p.occupancy
				if p.minCount > minCount {
					minCount = p.minCount
				}
				evictions += p.evictions
				dropped += p.dropped
			}
			publishAggMetrics(reg, agg.Name, occupancy, minCount, evictions, dropped)
		}
		for i, d := range dumps {
			parts[i] = &tsv.Snapshot{
				Aggregation: agg.Name,
				Level:       tsv.Minutely,
				Start:       int64(windowStart),
				Columns:     cols,
				Kinds:       kinds,
				TotalBefore: d.parts[a].seenBefore,
				TotalAfter:  d.parts[a].seenAfter,
				Windows:     1,
				Rows:        d.parts[a].rows,
			}
		}
		snap, err := tsv.MergeParts(agg.K, parts...)
		if err != nil {
			// Cannot happen: parts share one schema and window by
			// construction.
			continue
		}
		if s.onSnapshot != nil {
			s.deliver(snap)
		}
	}
	if s.det != nil {
		var dparts []detect.WindowPart
		for _, d := range dumps {
			dparts = append(dparts, d.det...)
		}
		if len(dparts) > 0 {
			ic, nod, err := s.det.MergeWindow(dparts)
			if err == nil && s.onSnapshot != nil {
				s.deliver(ic)
				s.deliver(nod)
			}
			s.det.PublishWindow(dparts)
		}
	}
}

// deliver runs the snapshot callback, recovering a panic so a faulty
// consumer cannot kill the merger (which would wedge Close).
func (s *Sharded) deliver(snap *tsv.Snapshot) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Inc()
		}
	}()
	s.onSnapshot(snap)
}
