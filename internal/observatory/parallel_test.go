package observatory

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/tsv"
)

// TestParallelMatchesSerial feeds the same stream through the serial
// pipeline and the parallel one and compares every snapshot.
func TestParallelMatchesSerial(t *testing.T) {
	aggs := func() []Aggregation {
		return []Aggregation{
			{Name: "srvip", K: 200, Key: SrvIPKey, NoAdmitter: true},
			{Name: "qname", K: 200, Key: QNameKey, NoAdmitter: true},
			{Name: "qtype", K: 16, Key: QTypeKey, NoAdmitter: true},
		}
	}
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false

	type event struct {
		resolver, ns, qname string
		qtype               dnswire.Type
		now                 float64
	}
	var events []event
	for i := 0; i < 5000; i++ {
		events = append(events, event{
			resolver: fmt.Sprintf("192.0.2.%d", i%20+1),
			ns:       fmt.Sprintf("198.51.100.%d", i%50+1),
			qname:    fmt.Sprintf("h%d.example%d.com.", i%7, i%90),
			qtype:    dnswire.TypeA,
			now:      float64(i) * 0.05,
		})
	}

	var serial []*tsv.Snapshot
	sp := New(cfg, aggs(), func(s *tsv.Snapshot) { serial = append(serial, s) })
	for _, e := range events {
		sp.Ingest(sum(e.resolver, e.ns, e.qname, e.qtype), e.now)
	}
	sp.Flush()

	var mu sync.Mutex
	var parallel []*tsv.Snapshot
	pp := NewParallel(cfg, aggs(), func(s *tsv.Snapshot) {
		mu.Lock()
		parallel = append(parallel, s)
		mu.Unlock()
	})
	for _, e := range events {
		pp.Ingest(sum(e.resolver, e.ns, e.qname, e.qtype), e.now)
	}
	pp.Close()

	key := func(s *tsv.Snapshot) string { return fmt.Sprintf("%s@%d", s.Aggregation, s.Start) }
	sortSnaps := func(ss []*tsv.Snapshot) {
		sort.Slice(ss, func(i, j int) bool { return key(ss[i]) < key(ss[j]) })
	}
	sortSnaps(serial)
	sortSnaps(parallel)
	if len(serial) != len(parallel) {
		t.Fatalf("snapshot counts: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if key(a) != key(b) {
			t.Fatalf("snapshot %d: %s vs %s", i, key(a), key(b))
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: rows %d vs %d", key(a), len(a.Rows), len(b.Rows))
		}
		for j := range a.Rows {
			if a.Rows[j].Key != b.Rows[j].Key {
				t.Fatalf("%s row %d: %s vs %s", key(a), j, a.Rows[j].Key, b.Rows[j].Key)
			}
			for c := range a.Rows[j].Values {
				va, vb := a.Rows[j].Values[c], b.Rows[j].Values[c]
				// The rate column depends on Space-Saving state shared
				// across aggregations in the serial case only through
				// identical inputs, so exact equality is expected.
				if va != vb {
					t.Fatalf("%s row %s col %s: %v vs %v",
						key(a), a.Rows[j].Key, a.Columns[c], va, vb)
				}
			}
		}
	}
}

func TestParallelCallerMayReuseSummary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	var mu sync.Mutex
	var got []*tsv.Snapshot
	pp := NewParallel(cfg, []Aggregation{{Name: "qname", K: 50, Key: QNameKey, NoAdmitter: true}},
		func(s *tsv.Snapshot) {
			mu.Lock()
			got = append(got, s)
			mu.Unlock()
		})
	s := sum("192.0.2.1", "198.51.100.1", "reused.example.com.", dnswire.TypeA)
	for i := 0; i < 1000; i++ {
		pp.Ingest(s, float64(i)*0.1)
		// Mutate the reused summary aggressively after handing it over.
		s.QName = "reused.example.com."
		s.AnswerTTLs = append(s.AnswerTTLs[:0], uint32(i))
	}
	pp.Close()
	if len(got) == 0 {
		t.Fatal("no snapshots")
	}
	var rows int
	for _, snap := range got {
		rows += len(snap.Rows)
	}
	if rows == 0 {
		t.Fatal("no rows despite 1000 ingests")
	}
}

func TestParallelCloseIdempotent(t *testing.T) {
	pp := NewParallel(DefaultConfig(), []Aggregation{{Name: "srvip", K: 10, Key: SrvIPKey}}, nil)
	pp.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), 1)
	pp.Close()
	pp.Close() // must not panic or deadlock
	// Ingest after close is a no-op.
	pp.Ingest(sum("192.0.2.1", "198.51.100.1", "b.example.com.", dnswire.TypeA), 2)
}
