package observatory

import (
	"dnsobservatory/internal/hll"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
)

// Metric family names published by the ingest engines. Exported as
// constants so consumers (web UI health checks, the dnsobs self-report)
// read families by name without string drift.
const (
	MetricIngested    = "dnsobs_engine_ingested_total"
	MetricAccepted    = "dnsobs_engine_accepted_total"
	MetricRejected    = "dnsobs_engine_rejected_total"
	MetricShed        = "dnsobs_engine_shed_total"
	MetricPanics      = "dnsobs_engine_panics_total"
	MetricQuarantined = "dnsobs_engine_quarantined_total"
	MetricFlush       = "dnsobs_engine_flush_seconds"
	MetricQueueDepth  = "dnsobs_engine_queue_depth"

	MetricTopkOccupancy = "dnsobs_topk_occupancy"
	MetricTopkMinCount  = "dnsobs_topk_min_count"
	MetricTopkEvictions = "dnsobs_topk_evictions_total"
	MetricTopkDropped   = "dnsobs_topk_dropped_total"
)

// engineMetrics is the ingest accounting every engine keeps. The
// counters are the single source of truth — Stats() reads them — so
// registry totals and EngineStats can never disagree. With a registry
// configured the counters are registered under one engine label; with
// none they are standalone, so hot paths never nil-check and engines in
// tests do not cross-contaminate a shared registry.
type engineMetrics struct {
	reg         *metrics.Registry // nil when standalone
	ingested    *metrics.Counter
	accepted    *metrics.Counter
	rejected    *metrics.Counter
	shed        *metrics.Counter
	panics      *metrics.Counter
	quarantined *metrics.Counter
	flush       *metrics.Histogram
}

// newEngineMetrics builds the counter set for one engine instance.
func newEngineMetrics(reg *metrics.Registry, engine string) *engineMetrics {
	if reg == nil {
		return &engineMetrics{
			ingested:    metrics.NewCounter(),
			accepted:    metrics.NewCounter(),
			rejected:    metrics.NewCounter(),
			shed:        metrics.NewCounter(),
			panics:      metrics.NewCounter(),
			quarantined: metrics.NewCounter(),
			flush:       metrics.NewHistogram(metrics.DurationBuckets),
		}
	}
	return &engineMetrics{
		reg:         reg,
		ingested:    reg.Counter(MetricIngested, "transactions offered to the platform, including rejects", "engine", engine),
		accepted:    reg.Counter(MetricAccepted, "summaries dispatched into aggregation state", "engine", engine),
		rejected:    reg.Counter(MetricRejected, "malformed transactions refused before feature extraction", "engine", engine),
		shed:        reg.Counter(MetricShed, "summaries dropped by the overload policy", "engine", engine),
		panics:      reg.Counter(MetricPanics, "recovered worker panics", "engine", engine),
		quarantined: reg.Counter(MetricQuarantined, "summary folds abandoned to a panic", "engine", engine),
		flush:       reg.Histogram(MetricFlush, "window snapshot flush latency", metrics.DurationBuckets, "engine", engine),
	}
}

// stats assembles EngineStats from the counters.
func (m *engineMetrics) stats() EngineStats {
	return EngineStats{
		Ingested:    m.ingested.Value(),
		Accepted:    m.accepted.Value(),
		Rejected:    m.rejected.Value(),
		Shed:        m.shed.Value(),
		Panics:      m.panics.Value(),
		Quarantined: m.quarantined.Value(),
	}
}

// publishAggMetrics publishes one aggregation's cache health: live
// occupancy and min-count (the overestimation bound), plus eviction and
// admission-drop deltas accumulated since the last publish. Engines
// call it at window-dump time, the only moment the publisher has
// exclusive access to the cache counters (workers own their caches; the
// sharded engine sums shard deltas on the merger before publishing).
func publishAggMetrics(reg *metrics.Registry, agg string, occupancy int, minCount, evictDelta, droppedDelta uint64) {
	reg.Gauge(MetricTopkOccupancy, "monitored keys across the aggregation's top-k cache(s)", "agg", agg).Set(float64(occupancy))
	reg.Gauge(MetricTopkMinCount, "smallest monitored count — the frequency overestimation bound", "agg", agg).Set(float64(minCount))
	if evictDelta > 0 {
		reg.Counter(MetricTopkEvictions, "top-k minimum-entry displacements", "agg", agg).Add(evictDelta)
	}
	if droppedDelta > 0 {
		reg.Counter(MetricTopkDropped, "observations refused by the Bloom admission filter", "agg", agg).Add(droppedDelta)
	}
}

// InstrumentPlatform registers the process-wide platform counters that
// live below the engines — layers deliberately kept dependency-free
// (hll, sie) expose plain counters, and this adapter publishes them.
// Call it once alongside wiring Config.Metrics.
func InstrumentPlatform(reg *metrics.Registry) {
	reg.CounterFunc("dnsobs_hll_promotions_total",
		"HyperLogLog sparse-to-dense promotions across all sketches", hll.Promotions)
	reg.CounterFunc("dnsobs_sie_decode_errors_total",
		"well-framed SIE records that failed to decode", sie.DecodeErrors)
}
