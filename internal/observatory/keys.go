package observatory

import (
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
)

// Key extractors for the paper's datasets (§3.1).

// SrvIPKey keys on the authoritative nameserver address (srvip dataset).
func SrvIPKey(sum *sie.Summary) (string, bool) {
	return sum.NameserverText(), true
}

// SrcIPKey keys on the recursive resolver address.
func SrcIPKey(sum *sie.Summary) (string, bool) {
	return sum.ResolverText(), true
}

// SrcSrvKey keys on the resolver–nameserver pair (srcsrv dataset), the
// basis of the QNAME-minimization analysis (§3.6).
func SrcSrvKey(sum *sie.Summary) (string, bool) {
	return sum.ResolverText() + ">" + sum.NameserverText(), true
}

// SrcSrvKeyBytes is the allocation-free form of SrcSrvKey: it appends
// the composite key to buf instead of concatenating a fresh string —
// the last per-transaction allocation of the ingest hot path.
func SrcSrvKeyBytes(sum *sie.Summary, buf []byte) ([]byte, bool) {
	buf = append(buf, sum.ResolverText()...)
	buf = append(buf, '>')
	buf = append(buf, sum.NameserverText()...)
	return buf, true
}

// QNameKey keys on the full QNAME (qname dataset).
func QNameKey(sum *sie.Summary) (string, bool) {
	return sum.QName, true
}

// QTypeKey keys on the query type (qtype dataset; all QTYPEs tracked).
func QTypeKey(sum *sie.Summary) (string, bool) {
	return sum.QType.String(), true
}

// RCodeKey keys on the response code (rcode dataset); unanswered
// transactions key as "UNANSWERED".
func RCodeKey(sum *sie.Summary) (string, bool) {
	if !sum.Answered {
		return "UNANSWERED", true
	}
	return sum.RCode.String(), true
}

// ETLDKeyFunc returns a key extractor for the effective TLD of the QNAME
// (etld dataset; NXDOMAIN traffic included by design).
func ETLDKeyFunc(list *publicsuffix.List) KeyFunc {
	if list == nil {
		list = publicsuffix.Default
	}
	return func(sum *sie.Summary) (string, bool) {
		return list.ETLD(sum.QName), true
	}
}

// ESLDKeyFunc returns a key extractor for the effective SLD (esld
// dataset).
func ESLDKeyFunc(list *publicsuffix.List) KeyFunc {
	if list == nil {
		list = publicsuffix.Default
	}
	return func(sum *sie.Summary) (string, bool) {
		// PrecomputeHashes memoizes the walk; the lists agree by the
		// same contract that makes ESLDHash usable downstream.
		if esld, ok := sum.ESLD(); ok {
			return esld, true
		}
		return list.ESLD(sum.QName), true
	}
}

// AAFQDNKey keys on the QNAME of authoritative answers only: responses
// with the AA flag set and either answer data or NS records in AUTHORITY
// (aafqdn dataset, §4.2.1).
func AAFQDNKey(sum *sie.Summary) (string, bool) {
	if !sum.Answered || !sum.AA || sum.RCode != dnswire.RCodeNoError {
		return "", false
	}
	if !sum.HasAnswerData && sum.AuthorityNS == 0 {
		return "", false
	}
	return sum.QName, true
}

// StandardAggregations returns the eight datasets of §3.1 at the paper's
// capacities, scaled by factor (use factor < 1 for laptop-scale runs;
// factor 1 reproduces the paper's 100K/10K/20K/30K sizes).
func StandardAggregations(factor float64) []Aggregation {
	if factor <= 0 {
		factor = 1
	}
	k := func(n int) int {
		v := int(float64(n) * factor)
		if v < 10 {
			v = 10
		}
		return v
	}
	return []Aggregation{
		{Name: "srvip", K: k(100_000), Key: SrvIPKey},
		{Name: "etld", K: k(10_000), Key: ETLDKeyFunc(nil)},
		{Name: "esld", K: k(100_000), Key: ESLDKeyFunc(nil)},
		{Name: "qname", K: k(100_000), Key: QNameKey},
		{Name: "qtype", K: 64, Key: QTypeKey, NoAdmitter: true},
		{Name: "rcode", K: 24, Key: RCodeKey, NoAdmitter: true},
		{Name: "aafqdn", K: k(20_000), Key: AAFQDNKey},
		{Name: "srcsrv", K: k(30_000), Key: SrcSrvKey, KeyBytes: SrcSrvKeyBytes},
	}
}
