package observatory

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dnsobservatory/internal/bloom"
	"dnsobservatory/internal/detect"
	"dnsobservatory/internal/features"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/spacesaving"
	"dnsobservatory/internal/tsv"
)

// KeyFunc extracts a DNS object key from a transaction summary; ok=false
// drops the transaction from this aggregation (input filtering, §2.2).
type KeyFunc func(*sie.Summary) (key string, ok bool)

// KeyBytesFunc appends a DNS object key to buf and returns the extended
// buffer; ok=false drops the transaction from this aggregation. It is
// the allocation-free form of KeyFunc for composite keys that a KeyFunc
// could only produce by concatenating into a fresh string (srcsrv):
// engines pass a reusable buffer and feed the appended bytes straight to
// spacesaving.ObserveBytes, which materializes a string only when the
// key actually enters the top-k cache.
type KeyBytesFunc func(sum *sie.Summary, buf []byte) (key []byte, ok bool)

// Aggregation configures one tracked Top-k object universe.
type Aggregation struct {
	Name string  // dataset name (srvip, etld, esld, qname, …)
	K    int     // Space-Saving capacity
	Key  KeyFunc // key extractor / filter
	// KeyBytes, when non-nil, is used by every engine instead of Key on
	// the ingest hot path. Key must still be set and agree byte-for-byte
	// with KeyBytes (analyses and tests use it for direct lookups).
	KeyBytes KeyBytesFunc
	// NoAdmitter disables the Bloom eviction guard (for ablation and for
	// aggregations with tiny key universes such as qtype/rcode).
	NoAdmitter bool
}

// Config tunes the pipeline.
type Config struct {
	// WindowSec is the statistics window; the paper dumps every 60 s.
	WindowSec float64
	// HalfLifeSec is the decay half-life for Space-Saving rate estimates.
	HalfLifeSec float64
	// Features sizes per-object feature sets.
	Features features.Config
	// AdmitterN / AdmitterFP size Bloom admission filters.
	AdmitterN  int
	AdmitterFP float64
	// SkipFreshObjects drops objects inserted during the current window
	// from its snapshot — they have not yet survived a full window
	// (§2.4). Disable for ablation.
	SkipFreshObjects bool
	// ChaosHook, when set, runs for every summary a supervised engine
	// worker processes, inside that worker's panic-recovery scope. It is
	// the chaos-injection point for worker panics (chaos.Injector's
	// PanicHook); leave nil in production.
	ChaosHook func(*sie.Summary)
	// Metrics, when set, is the registry the engine publishes its ingest
	// accounting and per-aggregation cache health to. Nil means the
	// engine keeps private, unregistered counters — hot paths are
	// identical either way, so tests never contaminate a shared registry.
	Metrics *metrics.Registry
	// Detect, when set, attaches the streaming detection layer
	// (internal/detect): every accepted summary also feeds the
	// information-content and newly-observed-domain trackers, and each
	// window dump additionally emits detect_esld and detect_nod
	// snapshots through OnSnapshot. The serial and sharded engines
	// produce byte-identical detection snapshots for the same stream
	// (see the detect package comment).
	Detect *detect.Config
}

// EngineStats is the ingest accounting every engine exposes via Stats().
// The invariant, once the stream is closed, is
//
//	Ingested = Accepted + Rejected + Shed
//
// Panics and Quarantined are diagnostics on top: Panics counts recovered
// worker panics (including those recovered while dumping a window), and
// Quarantined counts per-worker summary folds that were abandoned to a
// panic — the summary stays accepted, only the panicking worker's
// contribution is lost, so quarantining never kills a window.
type EngineStats struct {
	// Ingested counts every transaction offered to the platform,
	// including ones rejected before reaching the engine.
	Ingested uint64
	// Accepted counts summaries dispatched into aggregation state.
	Accepted uint64
	// Rejected counts malformed transactions refused before feature
	// extraction (recorded by the caller via RecordRejected).
	Rejected uint64
	// Shed counts summaries dropped by the overload policy.
	Shed uint64
	// Panics counts recovered worker panics.
	Panics uint64
	// Quarantined counts (worker, summary) folds abandoned to a panic.
	Quarantined uint64
}

// DefaultConfig mirrors the paper's operating point.
func DefaultConfig() Config {
	return Config{
		WindowSec:        60,
		HalfLifeSec:      60,
		Features:         features.DefaultConfig(),
		AdmitterN:        1 << 20,
		AdmitterFP:       0.01,
		SkipFreshObjects: true,
	}
}

// withDefaults fills zero fields in place.
func (cfg *Config) withDefaults() {
	if cfg.WindowSec <= 0 {
		cfg.WindowSec = 60
	}
	if cfg.HalfLifeSec <= 0 {
		cfg.HalfLifeSec = cfg.WindowSec
	}
	if cfg.AdmitterN <= 0 {
		cfg.AdmitterN = 1 << 20
	}
	if cfg.AdmitterFP <= 0 {
		cfg.AdmitterFP = 0.01
	}
}

// snapshotSchema returns the shared TSV schema (columns and kinds) of
// feature snapshots. The slices are built once and shared read-only by
// every snapshot.
var snapshotSchema = sync.OnceValues(func() ([]string, []tsv.Kind) {
	cols := make([]string, len(features.Columns))
	kinds := make([]tsv.Kind, len(features.Columns))
	for i, c := range features.Columns {
		cols[i] = c.Name
		kinds[i] = tsv.Kind(c.Kind)
	}
	return cols, kinds
})

// aggState is one aggregation's (or one shard of one aggregation's)
// runtime state: the Space-Saving cache, its admission filter, window
// statistics, and a free list of recycled feature sets — allocating a
// fresh ~10 kB feature set per eviction is what used to dominate the
// ingest profile on churny streams.
type aggState struct {
	agg        Aggregation
	cache      *spacesaving.Cache
	admitter   *bloom.Filter
	seenBefore uint64 // window transactions before filtering
	seenAfter  uint64 // window transactions aggregated into some object
	free       []*features.Set
	keyBuf     []byte // reusable KeyBytes buffer (serial ingest path)
	// lastEvict/lastDropped remember the cache counters at the previous
	// metrics publish, so each window adds only its delta.
	lastEvict   uint64
	lastDropped uint64
}

// publishMetrics publishes this state's cache health to reg (see
// publishAggMetrics for the exclusive-access requirement).
func (st *aggState) publishMetrics(reg *metrics.Registry) {
	ev, dr := st.cache.Evictions(), st.cache.Dropped()
	publishAggMetrics(reg, st.agg.Name, st.cache.Len(), st.cache.MinCount(),
		ev-st.lastEvict, dr-st.lastDropped)
	st.lastEvict, st.lastDropped = ev, dr
}

// newAggState builds one aggregation state with a cache of the given
// capacity (shards pass ⌈K/S⌉+slack; the serial pipeline passes K).
func newAggState(a Aggregation, cfg *Config, capacity int) *aggState {
	st := &aggState{agg: a}
	if !a.NoAdmitter {
		st.admitter = bloom.New(cfg.AdmitterN, cfg.AdmitterFP)
	}
	var adm spacesaving.Admitter
	if st.admitter != nil {
		adm = st.admitter
	}
	st.cache = spacesaving.New(capacity, cfg.HalfLifeSec, adm)
	st.cache.OnEvictState = func(state any) {
		if set, ok := state.(*features.Set); ok {
			st.free = append(st.free, set)
		}
	}
	return st
}

// featureSet returns a recycled (reset) feature set, or a fresh one.
func (st *aggState) featureSet(cfg *Config) *features.Set {
	if n := len(st.free); n > 0 {
		set := st.free[n-1]
		st.free = st.free[:n-1]
		set.Reset()
		return set
	}
	return features.NewSet(cfg.Features)
}

// observe folds one summary (already keyed) into the aggregation state.
func (st *aggState) observe(key string, sum *sie.Summary, now float64, cfg *Config) {
	st.fold(st.cache.Observe(key, now), sum, cfg)
}

// observeBytes is observe for a byte-slice key (no string materialized
// unless the key enters the cache).
func (st *aggState) observeBytes(key []byte, sum *sie.Summary, now float64, cfg *Config) {
	st.fold(st.cache.ObserveBytes(key, now), sum, cfg)
}

func (st *aggState) fold(e *spacesaving.Entry, sum *sie.Summary, cfg *Config) {
	if e == nil {
		return
	}
	set, ok := e.State.(*features.Set)
	if !ok {
		set = st.featureSet(cfg)
		e.State = set
	}
	set.Observe(sum)
	st.seenAfter++
}

// windowRows appends one TSV row per reportable entry of the current
// window (skipping fresh objects per §2.4 and idle entries).
func (st *aggState) windowRows(rows []tsv.Row, cfg *Config, windowStart, windowEnd float64) []tsv.Row {
	st.cache.Entries(func(e *spacesaving.Entry) {
		if cfg.SkipFreshObjects && e.InsertedAt > windowStart {
			return // has not survived a full window yet (§2.4)
		}
		set, ok := e.State.(*features.Set)
		if !ok || set.Hits == 0 {
			return
		}
		// Rates are read decayed to the window end, so idle objects do
		// not report their last burst forever.
		rate := st.cache.RateAt(e, windowEnd)
		rows = append(rows, tsv.Row{Key: e.Key, Values: set.Values(rate)})
	})
	return rows
}

// resetWindow clears per-window statistics, keeping the top-k list.
func (st *aggState) resetWindow() {
	st.cache.Entries(func(e *spacesaving.Entry) {
		if set, ok := e.State.(*features.Set); ok {
			set.Reset()
		}
	})
	if st.admitter != nil {
		st.admitter.Reset()
	}
	st.seenBefore, st.seenAfter = 0, 0
}

// sortRows orders snapshot rows by descending hits (column 0), ties
// broken by key — the canonical snapshot order.
func sortRows(rows []tsv.Row) {
	sort.Slice(rows, func(i, j int) bool {
		hi, hj := rows[i].Values[0], rows[j].Values[0]
		if hi != hj {
			return hi > hj
		}
		return rows[i].Key < rows[j].Key
	})
}

// Pipeline is the Observatory core. It is not safe for concurrent use;
// use the Sharded engine (or shard streams across pipelines) to
// parallelize.
type Pipeline struct {
	cfg    Config
	aggs   []*aggState
	byName map[string]*aggState
	// OnSnapshot receives each window's snapshot per aggregation.
	onSnapshot func(*tsv.Snapshot)

	windowStart float64
	started     bool
	det         *detect.Detector
	m           *engineMetrics
}

// New builds a pipeline over the given aggregations. onSnapshot may be
// nil when snapshots are collected via Flush's return value only.
func New(cfg Config, aggs []Aggregation, onSnapshot func(*tsv.Snapshot)) *Pipeline {
	cfg.withDefaults()
	p := &Pipeline{cfg: cfg, onSnapshot: onSnapshot, byName: make(map[string]*aggState, len(aggs))}
	p.m = newEngineMetrics(cfg.Metrics, "serial")
	if cfg.Detect != nil {
		dc := *cfg.Detect
		if dc.Metrics == nil {
			dc.Metrics = cfg.Metrics
		}
		p.det = detect.New(dc)
	}
	for _, a := range aggs {
		st := newAggState(a, &p.cfg, a.K)
		p.aggs = append(p.aggs, st)
		p.byName[a.Name] = st
	}
	return p
}

// Ingest processes one summary observed at stream time now (seconds).
// Crossing a window boundary dumps snapshots first. A now earlier than
// the current window (a reordered or backdated transaction) is clamped
// to the window start: late data folds into the open window instead of
// corrupting decay state.
func (p *Pipeline) Ingest(sum *sie.Summary, now float64) {
	if !p.started {
		p.windowStart = now - mod(now, p.cfg.WindowSec)
		p.started = true
	}
	if now < p.windowStart {
		now = p.windowStart
	}
	for now >= p.windowStart+p.cfg.WindowSec {
		p.dump()
		p.windowStart += p.cfg.WindowSec
	}
	p.m.ingested.Inc()
	p.m.accepted.Inc()
	for _, st := range p.aggs {
		st.seenBefore++
		if st.agg.KeyBytes != nil {
			kb, ok := st.agg.KeyBytes(sum, st.keyBuf[:0])
			st.keyBuf = kb[:0]
			if ok {
				st.observeBytes(kb, sum, now, &p.cfg)
			}
			continue
		}
		key, ok := st.agg.Key(sum)
		if !ok {
			continue
		}
		st.observe(key, sum, now, &p.cfg)
	}
	if p.det != nil {
		p.det.Observe(sum, now)
	}
}

func mod(x, m float64) float64 {
	r := x - float64(int64(x/m))*m
	if r < 0 {
		r += m
	}
	return r
}

// Flush dumps the current (possibly partial) window. Call at end of
// stream.
func (p *Pipeline) Flush() {
	if p.started {
		p.dump()
	}
}

// dump emits one snapshot per aggregation and resets window state.
func (p *Pipeline) dump() {
	start := time.Now()
	for _, st := range p.aggs {
		snap := p.snapshot(st)
		if p.onSnapshot != nil {
			p.onSnapshot(snap)
		}
		if p.m.reg != nil {
			st.publishMetrics(p.m.reg)
		}
		st.resetWindow()
	}
	if p.det != nil {
		parts := p.det.CollectAll(p.windowStart, p.windowStart+p.cfg.WindowSec)
		ic, nod, err := p.det.MergeWindow(parts)
		if err == nil && p.onSnapshot != nil {
			p.onSnapshot(ic)
			p.onSnapshot(nod)
		}
		p.det.PublishWindow(parts)
	}
	p.m.flush.Observe(time.Since(start).Seconds())
}

// snapshot builds the TSV snapshot for one aggregation's current window.
func (p *Pipeline) snapshot(st *aggState) *tsv.Snapshot {
	cols, kinds := snapshotSchema()
	snap := &tsv.Snapshot{
		Aggregation: st.agg.Name,
		Level:       tsv.Minutely,
		Start:       int64(p.windowStart),
		Columns:     cols,
		Kinds:       kinds,
		TotalBefore: st.seenBefore,
		TotalAfter:  st.seenAfter,
		Windows:     1,
	}
	snap.Rows = st.windowRows(snap.Rows, &p.cfg, p.windowStart, p.windowStart+p.cfg.WindowSec)
	sortRows(snap.Rows)
	return snap
}

// Detector returns the attached detection layer, or nil when
// Config.Detect was unset. Read its counters only while no ingest is in
// flight.
func (p *Pipeline) Detector() *detect.Detector { return p.det }

// Cache exposes an aggregation's Space-Saving cache (for analyses that
// read live state); nil if the aggregation does not exist.
func (p *Pipeline) Cache(name string) *spacesaving.Cache {
	if st, ok := p.byName[name]; ok {
		return st.cache
	}
	return nil
}

// Total returns the number of summaries ingested.
func (p *Pipeline) Total() uint64 { return p.m.accepted.Value() }

// RecordRejected accounts one transaction rejected before reaching the
// pipeline (malformed wire input the summarizer refused).
func (p *Pipeline) RecordRejected() {
	p.m.ingested.Inc()
	p.m.rejected.Inc()
}

// Stats returns the pipeline's ingest accounting. The serial pipeline
// never sheds or panics, so Accepted always equals Ingested − Rejected.
// Stats reads the same counters the engine publishes to its metrics
// registry, so the two views agree by construction.
func (p *Pipeline) Stats() EngineStats { return p.m.stats() }

// WindowStart returns the start of the current window.
func (p *Pipeline) WindowStart() float64 { return p.windowStart }

// String describes the pipeline configuration.
func (p *Pipeline) String() string {
	return fmt.Sprintf("observatory: %d aggregations, window %.0fs", len(p.aggs), p.cfg.WindowSec)
}
