package observatory

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

func sum(resolver, ns, qname string, qtype dnswire.Type) *sie.Summary {
	return &sie.Summary{
		Resolver:      netip.MustParseAddr(resolver),
		Nameserver:    netip.MustParseAddr(ns),
		QName:         qname,
		QType:         qtype,
		QDots:         dnswire.CountLabels(qname),
		Answered:      true,
		DelayMs:       10,
		Hops:          5,
		RespSize:      100,
		RCode:         dnswire.RCodeNoError,
		HasAnswerData: true,
		AnswerCount:   1,
		AA:            true,
	}
}

func TestPipelineWindowing(t *testing.T) {
	var snaps []*tsv.Snapshot
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	p := New(cfg, []Aggregation{{Name: "srvip", K: 100, Key: SrvIPKey, NoAdmitter: true}},
		func(s *tsv.Snapshot) { snaps = append(snaps, s) })

	// 30 tx in window [0,60), 10 in [60,120).
	for i := 0; i < 30; i++ {
		p.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), float64(i))
	}
	for i := 0; i < 10; i++ {
		p.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), 60+float64(i))
	}
	p.Flush()

	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	if snaps[0].Start != 0 || snaps[1].Start != 60 {
		t.Errorf("starts: %d %d", snaps[0].Start, snaps[1].Start)
	}
	r0 := snaps[0].Find("198.51.100.1")
	if r0 == nil {
		t.Fatal("object missing from first window")
	}
	if hits, _ := snaps[0].Value(r0, "hits"); hits != 30 {
		t.Errorf("window0 hits = %f", hits)
	}
	r1 := snaps[1].Find("198.51.100.1")
	if hits, _ := snaps[1].Value(r1, "hits"); hits != 10 {
		t.Errorf("window1 hits = %f (stats not reset between windows?)", hits)
	}
	if snaps[0].TotalBefore != 30 || snaps[0].TotalAfter != 30 {
		t.Errorf("stats: %d/%d", snaps[0].TotalBefore, snaps[0].TotalAfter)
	}
}

func TestSkipFreshObjects(t *testing.T) {
	var snaps []*tsv.Snapshot
	cfg := DefaultConfig()
	p := New(cfg, []Aggregation{{Name: "srvip", K: 100, Key: SrvIPKey, NoAdmitter: true}},
		func(s *tsv.Snapshot) { snaps = append(snaps, s) })

	// "old" enters in window 0; "fresh" enters mid-window 1.
	p.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), 5)
	p.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), 65)
	p.Ingest(sum("192.0.2.1", "198.51.100.2", "b.example.com.", dnswire.TypeA), 70)
	p.Flush() // dumps window 1

	last := snaps[len(snaps)-1]
	if last.Find("198.51.100.1") == nil {
		t.Error("surviving object skipped")
	}
	if last.Find("198.51.100.2") != nil {
		t.Error("fresh object not skipped")
	}
}

func TestMultipleAggregations(t *testing.T) {
	byName := map[string][]*tsv.Snapshot{}
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	p := New(cfg, StandardAggregations(0.001), func(s *tsv.Snapshot) {
		byName[s.Aggregation] = append(byName[s.Aggregation], s)
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		qn := fmt.Sprintf("www%d.site%d.example%d.com.", rng.Intn(3), rng.Intn(5), rng.Intn(10))
		s := sum(
			fmt.Sprintf("192.0.2.%d", rng.Intn(5)+1),
			fmt.Sprintf("198.51.100.%d", rng.Intn(20)+1),
			qn, dnswire.TypeA)
		p.Ingest(s, float64(i)*0.01)
	}
	p.Flush()
	for _, name := range []string{"srvip", "etld", "esld", "qname", "qtype", "rcode", "aafqdn", "srcsrv"} {
		if len(byName[name]) == 0 {
			t.Errorf("no snapshots for %s", name)
			continue
		}
		snap := byName[name][0]
		if len(snap.Rows) == 0 {
			t.Errorf("%s: empty snapshot", name)
		}
	}
	// etld snapshot should contain exactly "com.".
	etld := byName["etld"][0]
	if len(etld.Rows) != 1 || etld.Rows[0].Key != "com." {
		t.Errorf("etld rows: %+v", etld.Rows)
	}
	// qtype snapshot keys on mnemonic.
	if byName["qtype"][0].Rows[0].Key != "A" {
		t.Errorf("qtype key: %q", byName["qtype"][0].Rows[0].Key)
	}
}

func TestSnapshotSortedByHits(t *testing.T) {
	var snaps []*tsv.Snapshot
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	p := New(cfg, []Aggregation{{Name: "qname", K: 100, Key: QNameKey, NoAdmitter: true}},
		func(s *tsv.Snapshot) { snaps = append(snaps, s) })
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			p.Ingest(sum("192.0.2.1", "198.51.100.1", fmt.Sprintf("q%d.example.com.", i), dnswire.TypeA), float64(j))
		}
	}
	p.Flush()
	rows := snaps[0].Rows
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Values[0] < rows[i].Values[0] {
			t.Fatal("rows not sorted by hits")
		}
	}
	if rows[0].Key != "q9.example.com." {
		t.Errorf("top row = %q", rows[0].Key)
	}
}

func TestAAFQDNFilter(t *testing.T) {
	s := sum("192.0.2.1", "198.51.100.1", "x.example.com.", dnswire.TypeA)
	if _, ok := AAFQDNKey(s); !ok {
		t.Error("AA answer rejected")
	}
	s.AA = false
	if _, ok := AAFQDNKey(s); ok {
		t.Error("non-AA accepted")
	}
	s.AA = true
	s.HasAnswerData = false
	if _, ok := AAFQDNKey(s); ok {
		t.Error("empty answer accepted")
	}
	s.AuthorityNS = 2
	if _, ok := AAFQDNKey(s); !ok {
		t.Error("delegation rejected")
	}
	s.RCode = dnswire.RCodeNXDomain
	if _, ok := AAFQDNKey(s); ok {
		t.Error("NXDOMAIN accepted")
	}
}

func TestRCodeKey(t *testing.T) {
	s := sum("192.0.2.1", "198.51.100.1", "x.example.com.", dnswire.TypeA)
	if k, _ := RCodeKey(s); k != "NOERROR" {
		t.Errorf("key = %q", k)
	}
	s.Answered = false
	if k, _ := RCodeKey(s); k != "UNANSWERED" {
		t.Errorf("key = %q", k)
	}
}

func TestSrcSrvKey(t *testing.T) {
	s := sum("192.0.2.1", "198.51.100.1", "x.example.com.", dnswire.TypeA)
	if k, _ := SrcSrvKey(s); k != "192.0.2.1>198.51.100.1" {
		t.Errorf("key = %q", k)
	}
}

func TestEmptyWindowsProduceEmptySnapshots(t *testing.T) {
	var snaps []*tsv.Snapshot
	cfg := DefaultConfig()
	cfg.SkipFreshObjects = false
	p := New(cfg, []Aggregation{{Name: "srvip", K: 10, Key: SrvIPKey, NoAdmitter: true}},
		func(s *tsv.Snapshot) { snaps = append(snaps, s) })
	p.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), 0)
	// Jump 3 windows ahead.
	p.Ingest(sum("192.0.2.1", "198.51.100.1", "a.example.com.", dnswire.TypeA), 185)
	p.Flush()
	if len(snaps) != 4 {
		t.Fatalf("snapshots = %d, want 4", len(snaps))
	}
	// Middle windows carry no rows (stats were reset).
	if len(snaps[1].Rows) != 0 || len(snaps[2].Rows) != 0 {
		t.Errorf("idle windows have rows: %d %d", len(snaps[1].Rows), len(snaps[2].Rows))
	}
}

func TestCacheAccessor(t *testing.T) {
	p := New(DefaultConfig(), []Aggregation{{Name: "srvip", K: 10, Key: SrvIPKey}}, nil)
	if p.Cache("srvip") == nil {
		t.Error("cache missing")
	}
	if p.Cache("nope") != nil {
		t.Error("phantom cache")
	}
}

func TestStandardAggregationsScaling(t *testing.T) {
	aggs := StandardAggregations(1)
	if aggs[0].K != 100_000 {
		t.Errorf("srvip K = %d", aggs[0].K)
	}
	small := StandardAggregations(0.0001)
	for _, a := range small {
		if a.K < 10 {
			t.Errorf("%s K = %d below floor", a.Name, a.K)
		}
	}
}
