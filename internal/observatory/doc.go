// Package observatory is the DNS Observatory stream-analytics pipeline
// (paper §2): it ingests transaction summaries, tracks Top-k DNS objects
// per aggregation with Space-Saving caches guarded by Bloom admission
// filters, accumulates per-object traffic features, and every 60 seconds
// dumps a TSV snapshot per aggregation — resetting the statistics but
// keeping the top-k lists.
//
// Three ingest engines share the same aggregation state machinery:
//
//   - Pipeline: the serial reference implementation.
//   - Parallel: one goroutine per aggregation (the legacy fan-out; kept
//     as a comparison baseline).
//   - Sharded: key-hash-sharded workers with pooled summary buffers and
//     mergeable per-shard snapshots — the production shape.
//
// Concurrency and ownership: a Pipeline is single-owner (one producer
// goroutine, which also runs dumps). Parallel and Sharded accept one
// producer on Ingest — Sharded accepts any number — and do their own
// internal synchronization; snapshot callbacks run on engine goroutines
// and must not call back into the engine. Aggregation state (cache,
// feature sets) is only ever touched by the goroutine that owns its
// shard, which is what lets the per-object structures stay lock-free.
//
// Observability: set Config.Metrics to publish engine counters
// (ingested/accepted/rejected/shed/panics/quarantined), flush-latency
// histograms, queue depth and per-aggregation top-k health into a
// metrics.Registry; nil keeps the same hot path with unregistered
// counters. EngineStats reads from those same counters, so Stats() and
// /metrics can never disagree. InstrumentPlatform registers the
// process-wide hll and sie counters alongside.
package observatory
