package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Type is a metric family's kind, named after the Prometheus exposition
// types it renders as.
type Type string

// The supported family types.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Registry is a set of named metric families, each holding one child
// per distinct label set. All methods are safe for concurrent use;
// registration is mutex-guarded while the record paths of the returned
// metrics are lock-free atomics.
//
// Registration is get-or-create: asking for the same (name, labels)
// twice returns the same metric, so independent components that publish
// the same family aggregate into it. Asking for the same family name
// with a different Type panics — that is a programming error.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric family and its children.
type family struct {
	name     string
	help     string
	typ      Type
	children map[string]*child // keyed by rendered label string
}

// child is one (label set, value) pair of a family. Exactly one of the
// value fields is set, matching the family type; fn/gfn are the
// read-through forms used for counters and gauges computed on collect.
type child struct {
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	cfn    func() uint64
	gfn    func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry is the process-wide registry served by the web UI and
// the dnsobs self-report.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter for (name, labels), creating and
// registering it on first use. labels are alternating key, value pairs.
// help is recorded the first time the family is seen.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	var c *Counter
	r.child(name, help, TypeCounter, labels, func(ch *child) {
		if ch.c == nil {
			ch.c = NewCounter()
		}
		c = ch.c
	})
	return c
}

// Gauge returns the gauge for (name, labels), creating and registering
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	var g *Gauge
	r.child(name, help, TypeGauge, labels, func(ch *child) {
		if ch.g == nil {
			ch.g = NewGauge()
		}
		g = ch.g
	})
	return g
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket bounds on first use. Later calls for the same child
// return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	var h *Histogram
	r.child(name, help, TypeHistogram, labels, func(ch *child) {
		if ch.h == nil {
			ch.h = NewHistogram(bounds)
		}
		h = ch.h
	})
	return h
}

// CounterFunc registers a counter whose value is read from fn at
// collect time — for layers that already keep their own monotone tally
// (store corrupt-skips, chaos injections) so collection adds no cost to
// their hot paths. Re-registering the same (name, labels) replaces fn,
// so a fresh component instance can take over its family slot.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	r.child(name, help, TypeCounter, labels, func(ch *child) {
		ch.c = nil
		ch.cfn = fn
	})
}

// GaugeFunc registers a gauge read from fn at collect time (queue
// depths, cache sizes). Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.child(name, help, TypeGauge, labels, func(ch *child) {
		ch.g = nil
		ch.gfn = fn
	})
}

// Sum returns the sum of every child of the named family (counter and
// gauge families only), or 0 when the family does not exist. It is how
// consumers read a family total without enumerating label sets — e.g.
// transactions across engines, top-k occupancy across aggregations.
func (r *Registry) Sum(name string) float64 {
	var total float64
	for _, ch := range r.familyChildren(name) {
		total += ch.scalar()
	}
	return total
}

// SumCounter is Sum for counter families, kept in uint64 end to end:
// counters are uint64 internally, and totalling through float64 loses
// precision above 2^53 — reachable on a long-lived 200 k tx/s feed —
// which could make a reported total non-monotone. Non-counter children
// contribute nothing.
func (r *Registry) SumCounter(name string) uint64 {
	var total uint64
	for _, ch := range r.familyChildren(name) {
		switch {
		case ch.c != nil:
			total += ch.c.Value()
		case ch.cfn != nil:
			total += ch.cfn()
		}
	}
	return total
}

// scalar reads a counter or gauge child's current value.
func (ch *child) scalar() float64 {
	switch {
	case ch.c != nil:
		return float64(ch.c.Value())
	case ch.cfn != nil:
		return float64(ch.cfn())
	case ch.g != nil:
		return ch.g.Value()
	case ch.gfn != nil:
		return ch.gfn()
	}
	return 0
}

// child looks up or creates the (family, label set) slot and runs init
// on it while the write lock is still held, so the slot is fully
// initialized exactly once and two racing registrations of the same
// (name, labels) can never each build a distinct metric.
func (r *Registry) child(name, help string, typ Type, labels []string, init func(*child)) {
	checkName(name)
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, children: map[string]*child{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: family %q registered as %s, requested as %s", name, f.typ, typ))
	}
	if f.help == "" {
		f.help = help
	}
	ch := f.children[key]
	if ch == nil {
		ch = &child{labels: key}
		f.children[key] = ch
	}
	init(ch)
}

// checkName enforces the Prometheus metric-name charset.
func checkName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid metric name %q", name))
		}
	}
}

// renderLabels turns alternating key, value pairs into the canonical
// {k="v",...} suffix (label values escaped), which doubles as the child
// map key. Keys are rendered in the given order — callers pass a fixed
// order per family, which keeps exposition deterministic.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		checkLabelName(labels[i])
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		escapeLabelValue(&b, labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// checkLabelName enforces the Prometheus label-name charset.
func checkLabelName(name string) {
	if name == "" {
		panic("metrics: empty label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid label name %q", name))
		}
	}
}

// escapeLabelValue writes v with the exposition-format escapes.
func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// famView is an immutable copy of one family taken under the registry
// lock, so collection can render from it with no lock held.
type famView struct {
	name     string
	help     string
	typ      Type
	children []child
}

// snapshot copies every family and child value under the read lock,
// sorted by family name then label set for deterministic exposition.
// Registration mutates the maps and child fields under the write lock,
// so rendering from the copies is race-free; evaluating cfn/gfn
// callbacks happens after the lock is released, so a callback that
// itself touches the registry cannot deadlock collection.
func (r *Registry) snapshot() []famView {
	r.mu.RLock()
	fams := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		fv := famView{name: f.name, help: f.help, typ: f.typ,
			children: make([]child, 0, len(f.children))}
		for _, ch := range f.children {
			fv.children = append(fv.children, *ch)
		}
		fams = append(fams, fv)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, fv := range fams {
		sort.Slice(fv.children, func(i, j int) bool { return fv.children[i].labels < fv.children[j].labels })
	}
	return fams
}

// familyChildren copies the named family's children under the read
// lock; Sum and SumCounter evaluate the copies lock-free.
func (r *Registry) familyChildren(name string) []child {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f := r.families[name]
	if f == nil {
		return nil
	}
	out := make([]child, 0, len(f.children))
	for _, ch := range f.children {
		out = append(out, *ch)
	}
	return out
}
