// Package metrics is the Observatory's dependency-free observability
// core: a registry of counters, gauges and fixed-bucket histograms with
// Prometheus text (0.0.4) and JSON exposition. The paper's platform
// runs unattended against a ~200 k tx/s feed (§2); this package is how
// the reproduction watches itself doing the same — every ingest engine,
// the Space-Saving caches, the HLL sketches, the TSV store cascade and
// the chaos injector publish here, and webui serves the result at
// /metrics and /api/metricsz.
//
// Design constraints, in priority order:
//
//   - The record path (Counter.Inc/Add, Gauge.Set, Histogram.Observe)
//     is lock-free and allocation-free: a single atomic op (plus a
//     bounded linear bucket scan for histograms), because it rides on
//     the per-transaction hot path of every engine.
//   - Registration is get-or-create keyed by (name, label set), so any
//     layer can claim its family without coordination; registering the
//     same name with a different metric type panics at wiring time.
//   - Read-through CounterFunc/GaugeFunc adapt existing counters (store
//     fsyncs, chaos injections, HLL promotions) without touching their
//     hot paths: the function is called only at collection.
//   - No dependencies: the package imports only the standard library
//     and nothing from this repository, so every layer can import it.
//
// Concurrency: everything is safe for concurrent use. Registration
// takes a registry-wide mutex and fully initializes each (name, labels)
// slot before releasing it (it happens at wiring time, not per
// transaction); the record paths are atomics; collection (Snapshot,
// WritePrometheus, WriteJSON, Sum, SumCounter) copies the family tables
// under a read lock and renders — including calling read-through
// functions — with no lock held, so a scrape never races registration
// and a CounterFunc/GaugeFunc callback may itself touch the registry.
// Each metric is read atomically but the exposition as a whole is not a
// consistent cut — normal for metrics scrapes.
package metrics
