package metrics

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"strconv"
	"strings"
)

// errBoundsMismatch rejects merging histogram snapshots with different
// bucket layouts.
var errBoundsMismatch = errors.New("metrics: histogram bucket bounds differ")

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text
// exposition format (families sorted by name, children by label set, a
// HELP and TYPE comment per family). Values read concurrently with
// writers are each individually consistent.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshot() {
		b.Reset()
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(f.help, "\n", " "))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(string(f.typ))
		b.WriteByte('\n')
		for i := range f.children {
			ch := &f.children[i]
			if f.typ == TypeHistogram {
				writeHistogram(&b, f.name, ch)
				continue
			}
			b.WriteString(f.name)
			b.WriteString(ch.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(ch.scalar()))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram child: cumulative _bucket series
// per upper bound (ending at +Inf), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, ch *child) {
	if ch.h == nil {
		return
	}
	s := ch.h.Snapshot()
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		b.WriteString(name)
		b.WriteString(`_bucket`)
		b.WriteString(withLabel(ch.labels, `le="`+le+`"`))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(ch.labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(ch.labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(s.Count, 10))
	b.WriteByte('\n')
}

// withLabel splices one extra rendered label pair into an existing
// {..} suffix (or makes one).
func withLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatValue renders a sample value: integers without a decimal point,
// everything else in shortest-roundtrip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JSONMetric is one child in the /api/metricsz rendering.
type JSONMetric struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Counter and gauge families.
	Value *float64 `json:"value,omitempty"`
	// Histogram families: per-bucket (non-cumulative) counts keyed by
	// upper bound ("+Inf" for the overflow bucket), plus sum and count.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
}

// JSONFamily is one family in the /api/metricsz rendering.
type JSONFamily struct {
	Name    string       `json:"name"`
	Type    Type         `json:"type"`
	Help    string       `json:"help,omitempty"`
	Metrics []JSONMetric `json:"metrics"`
}

// WriteJSON renders the registry as a JSON array of families (the
// expvar-style /api/metricsz view), sorted like WritePrometheus.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := r.snapshot()
	out := make([]JSONFamily, 0, len(fams))
	for _, f := range fams {
		jf := JSONFamily{Name: f.name, Type: f.typ, Help: f.help, Metrics: []JSONMetric{}}
		for i := range f.children {
			ch := &f.children[i]
			m := JSONMetric{Labels: parseLabels(ch.labels)}
			if f.typ == TypeHistogram {
				if ch.h == nil {
					continue
				}
				s := ch.h.Snapshot()
				m.Buckets = make(map[string]uint64, len(s.Counts))
				for i, c := range s.Counts {
					le := "+Inf"
					if i < len(s.Bounds) {
						le = formatValue(s.Bounds[i])
					}
					m.Buckets[le] = c
				}
				sum, count := s.Sum, s.Count
				m.Sum, m.Count = &sum, &count
			} else {
				v := ch.scalar()
				m.Value = &v
			}
			jf.Metrics = append(jf.Metrics, m)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// parseLabels recovers the key→value map from a rendered label suffix.
// Only used at exposition time, so the tiny parser beats storing a
// second representation on every child.
func parseLabels(rendered string) map[string]string {
	if rendered == "" {
		return nil
	}
	body := rendered[1 : len(rendered)-1]
	out := map[string]string{}
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			break
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		out[key] = val.String()
		body = rest[i:]
		body = strings.TrimPrefix(body, `"`)
		body = strings.TrimPrefix(body, `,`)
	}
	return out
}
