package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same identity for the same (name, labels).
	if r.Counter("test_total", "") != c {
		t.Error("second registration returned a different counter")
	}
	if r.Counter("test_total", "", "engine", "a") == c {
		t.Error("different labels returned the same counter")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestSum(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx_total", "", "engine", "a").Add(3)
	r.Counter("tx_total", "", "engine", "b").Add(4)
	r.CounterFunc("tx_total", "", func() uint64 { return 10 }, "engine", "c")
	if got := r.Sum("tx_total"); got != 17 {
		t.Fatalf("Sum = %v, want 17", got)
	}
	if got := r.Sum("missing"); got != 0 {
		t.Fatalf("Sum(missing) = %v, want 0", got)
	}
	if got := r.SumCounter("tx_total"); got != 17 {
		t.Fatalf("SumCounter = %v, want 17", got)
	}
	if got := r.SumCounter("missing"); got != 0 {
		t.Fatalf("SumCounter(missing) = %v, want 0", got)
	}
}

// TestSumCounterExact: counter totals above 2^53 are not representable
// in float64, so Sum rounds — SumCounter must not.
func TestSumCounterExact(t *testing.T) {
	r := NewRegistry()
	const big = uint64(1<<53) + 1
	r.Counter("big_total", "").Add(big)
	if got := r.SumCounter("big_total"); got != big {
		t.Fatalf("SumCounter = %d, want %d", got, big)
	}
	// Gauges never contribute to SumCounter.
	r.Gauge("g_depth", "").Set(5)
	if got := r.SumCounter("g_depth"); got != 0 {
		t.Fatalf("SumCounter over a gauge family = %d, want 0", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter family as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestPrometheusGolden pins the full exposition of a small registry:
// sorted families, HELP/TYPE comments, label escaping, histogram
// bucket/sum/count rendering.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "transactions", "engine", "sharded").Add(7)
	r.Counter("b_total", "transactions", "engine", `we"ird\`).Add(1)
	r.Gauge("a_depth", "queue depth").Set(3)
	h := r.Histogram("c_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_depth queue depth
# TYPE a_depth gauge
a_depth 3
# HELP b_total transactions
# TYPE b_total counter
b_total{engine="sharded"} 7
b_total{engine="we\"ird\\"} 1
# HELP c_seconds latency
# TYPE c_seconds histogram
c_seconds_bucket{le="0.1"} 1
c_seconds_bucket{le="1"} 3
c_seconds_bucket{le="+Inf"} 4
c_seconds_sum 11.05
c_seconds_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusLineShape validates every exposed line against the
// text-format grammar (comment, or sample with optional labels).
func TestPrometheusLineShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", "k", "v").Inc()
	r.GaugeFunc("y", "live", func() float64 { return 1.25 })
	r.Histogram("z_seconds", "", DurationBuckets).Observe(0.003)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("sample line %q: no value separator", line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("sample line %q: unterminated label set", line)
			}
			name = name[:i]
		}
		for j := 0; j < len(name); j++ {
			c := name[j]
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (j > 0 && c >= '0' && c <= '9')) {
				t.Fatalf("sample line %q: bad metric name %q", line, name)
			}
		}
		if value == "" || strings.ContainsAny(value, " ") {
			t.Fatalf("sample line %q: bad value %q", line, value)
		}
	}
}

func TestJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx_total", "transactions", "engine", "serial").Add(12)
	h := r.Histogram("lat_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var fams []JSONFamily
	if err := json.Unmarshal(buf.Bytes(), &fams); err != nil {
		t.Fatalf("metricsz output is not valid JSON: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	// Sorted by name: lat_seconds first.
	if fams[0].Name != "lat_seconds" || fams[0].Type != TypeHistogram {
		t.Fatalf("family 0 = %+v", fams[0])
	}
	m := fams[0].Metrics[0]
	if m.Count == nil || *m.Count != 2 || m.Sum == nil || *m.Sum != 2.5 {
		t.Errorf("histogram sum/count wrong: %+v", m)
	}
	if m.Buckets["1"] != 1 || m.Buckets["+Inf"] != 1 {
		t.Errorf("histogram buckets wrong: %+v", m.Buckets)
	}
	c := fams[1].Metrics[0]
	if c.Value == nil || *c.Value != 12 || c.Labels["engine"] != "serial" {
		t.Errorf("counter child wrong: %+v", c)
	}
}

// TestHistogramSnapshotMergeProperty: splitting a random observation
// stream across two histograms and merging their snapshots must equal
// one histogram observing everything.
func TestHistogramSnapshotMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		bounds := DurationBuckets[:2+rng.Intn(len(DurationBuckets)-2)]
		a, b, all := NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			v := math.Exp(rng.NormFloat64()*3 - 5) // spans below/above all bounds
			if rng.Intn(2) == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
			all.Observe(v)
		}
		got := a.Snapshot()
		if err := got.Merge(b.Snapshot()); err != nil {
			t.Fatal(err)
		}
		want := all.Snapshot()
		if got.Count != want.Count {
			t.Fatalf("trial %d: merged count %d != %d", trial, got.Count, want.Count)
		}
		if math.Abs(got.Sum-want.Sum) > 1e-9*math.Abs(want.Sum) {
			t.Fatalf("trial %d: merged sum %v != %v", trial, got.Sum, want.Sum)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("trial %d bucket %d: %d != %d", trial, i, got.Counts[i], want.Counts[i])
			}
		}
	}
	// Mismatched bounds must refuse to merge.
	s := NewHistogram([]float64{1}).Snapshot()
	if err := s.Merge(NewHistogram([]float64{2}).Snapshot()); err == nil {
		t.Fatal("merging mismatched bounds did not error")
	}
}

// TestConcurrentRegisterCollect hammers registration, recording and
// collection from many goroutines; run under -race.
func TestConcurrentRegisterCollect(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := []string{"m_a_total", "m_b_total", "m_c", "m_d_seconds", "m_e_total", "m_f"}[g]
			for i := 0; i < 2000; i++ {
				switch g {
				case 0, 1:
					r.Counter(name, "", "w", string(rune('a'+i%3))).Inc()
				case 2:
					r.Gauge(name, "").Set(float64(i))
				case 3:
					r.Histogram(name, "", DurationBuckets).Observe(float64(i) / 1e4)
				case 4:
					// Re-registration replaces the read-through func;
					// must not race with a concurrent collect.
					v := uint64(i)
					r.CounterFunc(name, "", func() uint64 { return v })
				case 5:
					v := float64(i)
					r.GaugeFunc(name, "", func() float64 { return v })
				}
			}
		}(g)
	}
	var collector sync.WaitGroup
	collector.Add(1)
	go func() {
		defer collector.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
				t.Error(err)
				return
			}
			if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
				t.Error(err)
				return
			}
			r.Sum("m_a_total")
		}
	}()
	wg.Wait()
	close(stop)
	collector.Wait()
	if got := r.Sum("m_a_total"); got != 2000 {
		t.Fatalf("m_a_total = %v, want 2000", got)
	}
}

// TestRecordPathAllocs pins the alloc-free contract of the record path
// (the same property BenchmarkMetricsRecord reports at the repo root).
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(4.2) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.017) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}
