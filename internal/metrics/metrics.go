package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use and the record
// path (Inc/Add) is a single atomic add — no allocation, no lock.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone counter not attached to any registry
// (engines use these when no registry is configured, so their hot paths
// never need a nil check).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depth, occupancy,
// heap bytes). The zero value is ready to use; all methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// NewGauge returns a standalone gauge not attached to any registry.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge (CAS loop; allocation-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: cumulative-style observation
// counts per upper bound plus a running sum and total count. Buckets
// are fixed at construction, so Observe is allocation-free — a linear
// scan over a handful of bounds and three atomic updates. Safe for
// concurrent use.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits of the observation sum
	count  atomic.Uint64
}

// DurationBuckets is the default bucket layout for latency histograms,
// in seconds: 100 µs .. 10 s, roughly 1-2.5-5 per decade.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram returns a standalone histogram over the given ascending
// upper bounds (a final +Inf bucket is implicit). bounds is copied.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative); Counts[len(Bounds)] is the
// +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may land between bucket reads, so a snapshot taken during writes is a
// consistent-enough view for monitoring, not a linearizable cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction; shared
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// Merge folds other into s. The two snapshots must have identical
// bucket bounds.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) != len(other.Bounds) {
		return errBoundsMismatch
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return errBoundsMismatch
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}
