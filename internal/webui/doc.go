// Package webui exposes the Observatory's live state over HTTP — the
// paper's planned "web interface" for sharing collected data. It serves
// the latest snapshot of each aggregation as JSON, the stored TSV files
// verbatim, the process metrics registry, and a health endpoint.
//
//	GET /healthz                         liveness + ingest counters
//	GET /metrics                         Prometheus text exposition
//	GET /api/metricsz                    metrics as JSON families
//	GET /api/aggregations                aggregation names
//	GET /api/top/{agg}?n=50&col=hits     latest top objects as JSON
//	GET /api/files/{agg}                 stored snapshot files
//	GET /files/{agg}/{level}/{start}     one TSV file, as written
//	GET /debug/pprof/...                 profiling (EnablePprof only)
//
// Concurrency: a Server is safe for concurrent use — snapshot state is
// RWMutex-guarded, and the handlers otherwise read only the metrics
// registry (itself concurrency-safe) and the store. Configure Registry
// and EnablePprof before calling Handler.
package webui
