package webui

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/tsv"
)

// queryResponse mirrors handleQuery's JSON shape.
type queryResponse struct {
	Aggregation    string   `json:"aggregation"`
	Level          string   `json:"level"`
	From           int64    `json:"from"`
	To             int64    `json:"to"`
	Windows        int      `json:"windows"`
	Files          int      `json:"files"`
	CorruptSkipped int      `json:"corrupt_skipped"`
	Columns        []string `json:"columns"`
	Rows           []struct {
		Rank   int                `json:"rank"`
		Key    string             `json:"key"`
		Values map[string]float64 `json:"values"`
	} `json:"rows"`
}

// newQueryServer builds a server over a store of the given backend with
// three minutely windows stored.
func newQueryServer(t *testing.T, backend string) *httptest.Server {
	t.Helper()
	store, err := tsv.NewStoreBackend(t.TempDir(), backend)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		snap := snapshotFixture("srvip", i*60)
		if i == 2 {
			// Window 2 adds a tie with an earlier key than 198.51.100.2.
			snap.Rows = append(snap.Rows, tsv.Row{Key: "198.51.100.0", Values: []float64{900, 5}})
		}
		if err := store.Put(snap); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(store)
	s.Registry = metrics.NewRegistry()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getQuery(t *testing.T, ts *httptest.Server, params string) (int, *queryResponse, string) {
	t.Helper()
	code, body := get(t, ts.URL+"/api/query?"+params)
	if code != http.StatusOK {
		return code, nil, body
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	return code, &resp, body
}

func TestQueryEndpoint(t *testing.T) {
	for _, backend := range []string{tsv.BackendTSV, tsv.BackendColumnar} {
		t.Run(backend, func(t *testing.T) {
			ts := newQueryServer(t, backend)
			code, resp, body := getQuery(t, ts, "agg=srvip")
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, body)
			}
			if resp.Files != 3 || resp.Windows != 3 || resp.Level != "min" {
				t.Fatalf("meta = %+v", resp)
			}
			// Counter mean over 3 windows: .2 = 300, .0 = 900/3 = 300,
			// tie broken by ascending key, then .1 = 100, .3 = 50.
			want := []string{"198.51.100.0", "198.51.100.2", "198.51.100.1", "198.51.100.3"}
			if len(resp.Rows) != len(want) {
				t.Fatalf("rows = %+v", resp.Rows)
			}
			for i, k := range want {
				if resp.Rows[i].Key != k || resp.Rows[i].Rank != i+1 {
					t.Fatalf("rank %d = %+v, want key %q", i+1, resp.Rows[i], k)
				}
			}
		})
	}
}

func TestQueryEndpointProjectionAndTopK(t *testing.T) {
	ts := newQueryServer(t, tsv.BackendColumnar)
	code, resp, body := getQuery(t, ts, "agg=srvip&cols=nxd&order=hits&k=2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	// Projection subset plus the implicit order column.
	if fmt.Sprint(resp.Columns) != "[nxd hits]" {
		t.Fatalf("columns = %v", resp.Columns)
	}
	if len(resp.Rows) != 2 {
		t.Fatalf("rows = %+v", resp.Rows)
	}
	if resp.Rows[0].Key != "198.51.100.0" || resp.Rows[1].Key != "198.51.100.2" {
		t.Fatalf("rows = %+v", resp.Rows)
	}
	if _, ok := resp.Rows[0].Values["nxd"]; !ok {
		t.Fatalf("values missing projected column: %+v", resp.Rows[0].Values)
	}
}

func TestQueryEndpointRangeKeyWhere(t *testing.T) {
	ts := newQueryServer(t, tsv.BackendColumnar)
	// Single-window range.
	code, resp, body := getQuery(t, ts, "agg=srvip&from=60&to=120")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if resp.Files != 1 || resp.From != 60 || resp.To != 60 {
		t.Fatalf("meta = %+v", resp)
	}
	// Point lookup.
	code, resp, body = getQuery(t, ts, "agg=srvip&key=198.51.100.3")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if len(resp.Rows) != 1 || resp.Rows[0].Key != "198.51.100.3" {
		t.Fatalf("rows = %+v", resp.Rows)
	}
	// Open-ended where predicate: hits >= 200 keeps .2 and .0.
	code, resp, body = getQuery(t, ts, "agg=srvip&"+
		"where=hits:200:")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	for _, r := range resp.Rows {
		if r.Key == "198.51.100.3" || r.Key == "198.51.100.1" {
			t.Fatalf("predicate leaked row %+v", r)
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := newQueryServer(t, tsv.BackendTSV)
	cases := map[string]int{
		"":                            http.StatusBadRequest, // empty agg
		"agg=srvip&level=fortnightly": http.StatusBadRequest,
		"agg=srvip&from=bogus":        http.StatusBadRequest,
		"agg=srvip&to=bogus":          http.StatusBadRequest,
		"agg=srvip&k=-1":              http.StatusBadRequest,
		"agg=srvip&k=bogus":           http.StatusBadRequest,
		"agg=srvip&from=500&to=100":   http.StatusBadRequest, // inverted range
		"agg=srvip&cols=nope":         http.StatusBadRequest, // unknown column
		"agg=srvip&order=nope":        http.StatusBadRequest,
		"agg=srvip&where=hits":        http.StatusBadRequest, // malformed pred
		"agg=srvip&where=:1:2":        http.StatusBadRequest, // empty pred column
		"agg=srvip&where=hits:x:":     http.StatusBadRequest,
		"agg=srvip&where=hits::x":     http.StatusBadRequest,
		"agg=nope":                    http.StatusNotFound, // no data
		"agg=srvip&level=day":         http.StatusNotFound, // nothing cascaded
		"agg=srvip&from=90000":        http.StatusNotFound, // empty range
	}
	for params, want := range cases {
		code, body := get(t, ts.URL+"/api/query?"+params)
		if code != want {
			t.Errorf("?%s: status %d want %d (%s)", params, code, want, strings.TrimSpace(body))
		}
	}
}

func TestQueryEndpointNoStore(t *testing.T) {
	_, ts := newTestServer(t, false)
	code, body := get(t, ts.URL+"/api/query?agg=srvip")
	if code != http.StatusNotFound {
		t.Fatalf("status %d: %s", code, body)
	}
}

func TestQueryEndpointMetrics(t *testing.T) {
	ts := newQueryServer(t, tsv.BackendColumnar)
	if code, _, body := getQuery(t, ts, "agg=srvip&k=1"); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	for _, want := range []string{"dnsobs_query_total 1", "dnsobs_query_files_total 3"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
