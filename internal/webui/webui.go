package webui

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/tsv"
)

// Server is the HTTP facade. The zero value is not usable; create with
// NewServer. Server is safe for concurrent use.
//
// The server reads transaction counts from the metrics registry the
// engines publish to (there is no per-transaction hook to remember to
// call): wire the same registry into observatory.Config.Metrics, or
// leave Registry nil to use metrics.Default().
type Server struct {
	mu     sync.RWMutex
	latest map[string]*tsv.Snapshot
	store  tsv.SnapshotStore // optional
	engine *tsv.Engine       // non-nil iff store is
	qOnce  sync.Once         // instruments engine on first Handler call

	// Registry is the metrics registry served by /metrics and
	// /api/metricsz and read by /healthz. Set before Handler;
	// nil means metrics.Default().
	Registry *metrics.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and cost CPU, so
	// they are opt-in (the dnsobs -pprof flag).
	EnablePprof bool
	// Sensors, when set, adds its result under the "sensors" key in
	// /healthz — dnsobs wires it to the transport collector's per-sensor
	// liveness so operators see which feeds are up. Declared as func()
	// any to keep webui decoupled from the transport package.
	Sensors func() any
	// WAL, when set, adds its result under the "wal" key in /healthz —
	// dnsobs wires it to the collector's journal status (size, lag,
	// last checkpoint). Same decoupling convention as Sensors.
	WAL func() any
	// Fleet, when set, adds its result under the "fleet" key in
	// /healthz — dnsobs wires it to the fleet router's member list so
	// operators see placement and cooldowns.
	Fleet func() any
	// Probe, when set, adds its result under the "probe" key in
	// /healthz — dnsprobe wires it to the probe engine's Status so
	// operators see queue depth, in-flight probes and the outcome
	// counters. Same decoupling convention as Sensors.
	Probe func() any
	// Enc, when set, serves GET /api/encdns and adds its result under
	// the "enc" key in /healthz — dnsobs wires it to the encwire
	// accumulator's Status (per-mode message, byte and handshake
	// counters of the encrypted client leg). Same decoupling convention
	// as Sensors.
	Enc func() any

	windows atomic.Uint64
}

// NewServer returns a server; store may be nil when only live snapshots
// are exposed. Any SnapshotStore backend works — the server reads
// through the interface, so TSV and columnar stores serve the same
// endpoints.
func NewServer(store tsv.SnapshotStore) *Server {
	if st, ok := store.(*tsv.Store); ok && st == nil {
		store = nil // typed nil from callers still means "no store"
	}
	s := &Server{latest: map[string]*tsv.Snapshot{}, store: store}
	if store != nil {
		s.engine = tsv.NewEngine(store)
	}
	return s
}

// OnSnapshot records a freshly dumped snapshot; hook it into the
// pipeline's snapshot callback.
func (s *Server) OnSnapshot(snap *tsv.Snapshot) {
	s.mu.Lock()
	s.latest[snap.Aggregation] = snap
	s.mu.Unlock()
	s.windows.Add(1)
}

// registry returns the effective metrics registry.
func (s *Server) registry() *metrics.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return metrics.Default()
}

// Handler returns the routed http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /api/aggregations", s.handleAggregations)
	mux.HandleFunc("GET /api/top/{agg}", s.handleTop)
	mux.HandleFunc("GET /api/detect", s.handleDetect)
	mux.HandleFunc("GET /api/encdns", s.handleEncDNS)
	mux.HandleFunc("GET /api/query", s.handleQuery)
	mux.HandleFunc("GET /api/files/{agg}", s.handleFiles)
	mux.HandleFunc("GET /files/{agg}/{level}/{start}", s.handleFile)
	if s.engine != nil {
		s.qOnce.Do(func() { s.engine.Instrument(s.registry()) })
	}
	if s.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	health := map[string]any{
		"ok":           true,
		"transactions": s.registry().SumCounter(observatoryIngested),
		"windows":      s.windows.Load(),
	}
	if s.Sensors != nil {
		health["sensors"] = s.Sensors()
	}
	if s.WAL != nil {
		health["wal"] = s.WAL()
	}
	if s.Fleet != nil {
		health["fleet"] = s.Fleet()
	}
	if s.Probe != nil {
		health["probe"] = s.Probe()
	}
	if s.Enc != nil {
		health["enc"] = s.Enc()
	}
	writeJSON(w, health)
}

// observatoryIngested is the engine family /healthz reports. Mirrors
// observatory.MetricIngested; the string is duplicated to keep webui
// free of an import cycle risk and usable with any engine that
// publishes the family.
const observatoryIngested = "dnsobs_engine_ingested_total"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	if err := s.registry().WritePrometheus(w); err != nil {
		// Too late for a status change; the connection is gone.
		return
	}
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.registry().WriteJSON(w); err != nil {
		return
	}
}

func (s *Server) handleAggregations(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.latest))
	for name := range s.latest {
		names = append(names, name)
	}
	s.mu.RUnlock()
	writeJSON(w, names)
}

// topRow is the JSON shape of one object.
type topRow struct {
	Rank   int                `json:"rank"`
	Key    string             `json:"key"`
	Values map[string]float64 `json:"values"`
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	agg := r.PathValue("agg")
	s.mu.RLock()
	snap := s.latest[agg]
	s.mu.RUnlock()
	if snap == nil {
		http.Error(w, "unknown aggregation", http.StatusNotFound)
		return
	}
	n := 50
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > 100000 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	col := r.URL.Query().Get("col")
	if col == "" {
		col = "hits"
	}
	valid := false
	for _, c := range snap.Columns {
		if c == col {
			valid = true
			break
		}
	}
	if !valid {
		http.Error(w, "unknown column", http.StatusBadRequest)
		return
	}
	snap.SortByColumn(col)
	out := struct {
		Aggregation string   `json:"aggregation"`
		WindowStart int64    `json:"window_start"`
		Rows        []topRow `json:"rows"`
	}{Aggregation: agg, WindowStart: snap.Start}
	for i := range snap.Rows {
		if i >= n {
			break
		}
		row := topRow{Rank: i + 1, Key: snap.Rows[i].Key, Values: map[string]float64{}}
		for c, name := range snap.Columns {
			row.Values[name] = snap.Rows[i].Values[c]
		}
		out.Rows = append(out.Rows, row)
	}
	writeJSON(w, out)
}

// Detection snapshot aggregation names. Mirrors detect.AggESLD and
// detect.AggNOD; duplicated like observatoryIngested to keep webui
// decoupled from the detection package.
const (
	detectESLD = "detect_esld"
	detectNOD  = "detect_nod"
)

// handleDetect serves GET /api/detect — the latest detection window in
// one response: information-content heavy hitters ranked by score and
// newly observed domains ranked by hits. ?n caps each list (default
// 50). 404 until the first detection window has been dumped (the
// engines only emit these snapshots when detection is enabled).
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ic := s.latest[detectESLD]
	nod := s.latest[detectNOD]
	s.mu.RUnlock()
	if ic == nil && nod == nil {
		http.Error(w, "detection not enabled", http.StatusNotFound)
		return
	}
	n := 50
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > 100000 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	rank := func(snap *tsv.Snapshot, col string) []topRow {
		rows := []topRow{}
		if snap == nil {
			return rows
		}
		snap.SortByColumn(col)
		for i := range snap.Rows {
			if i >= n {
				break
			}
			row := topRow{Rank: i + 1, Key: snap.Rows[i].Key, Values: map[string]float64{}}
			for c, name := range snap.Columns {
				row.Values[name] = snap.Rows[i].Values[c]
			}
			rows = append(rows, row)
		}
		return rows
	}
	out := struct {
		WindowStart   int64    `json:"window_start"`
		HeavyHitters  []topRow `json:"heavy_hitters"`
		NewlyObserved []topRow `json:"newly_observed"`
	}{HeavyHitters: rank(ic, "score"), NewlyObserved: rank(nod, "hits")}
	switch {
	case ic != nil:
		out.WindowStart = ic.Start
	case nod != nil:
		out.WindowStart = nod.Start
	}
	writeJSON(w, out)
}

// handleEncDNS serves GET /api/encdns — the encrypted-client-leg
// status the Enc hook exposes (per-mode message/byte/handshake
// counters from an encwire accumulator). 404 until the hook is wired
// (plaintext deployments have no encrypted leg to report).
func (s *Server) handleEncDNS(w http.ResponseWriter, r *http.Request) {
	if s.Enc == nil {
		http.Error(w, "encrypted-leg accounting not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, s.Enc())
}

// parseLevel maps a level name ("minutely", "hourly", ...) to its
// constant; ok is false for unknown names.
func parseLevel(name string) (tsv.Level, bool) {
	for l := tsv.Minutely; l <= tsv.MaxLevel; l++ {
		if l.Name() == name {
			return l, true
		}
	}
	return 0, false
}

// handleQuery serves GET /api/query — the read path over the snapshot
// store. Parameters:
//
//	agg    aggregation name (required)
//	level  level name (default "minutely")
//	from   inclusive window-start lower bound, unix seconds (default 0)
//	to     exclusive upper bound; 0 or absent means unbounded
//	cols   CSV column projection (default: all columns)
//	order  ranking column (default: first result column)
//	k      top-k cap, 0 means all (default 50)
//	key    exact-key point lookup
//	where  repeatable predicate "col:min:max"; empty min/max mean
//	       unbounded on that side
//
// Rows aggregate over the matched windows with the cascade's semantics
// and rank by descending order-column value, ties by ascending key.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		http.Error(w, "no store attached", http.StatusNotFound)
		return
	}
	qp := r.URL.Query()
	q := tsv.Query{Agg: qp.Get("agg"), Level: tsv.Minutely, K: 50, Key: qp.Get("key"), OrderBy: qp.Get("order")}
	if lv := qp.Get("level"); lv != "" {
		level, ok := parseLevel(lv)
		if !ok {
			http.Error(w, "unknown level", http.StatusBadRequest)
			return
		}
		q.Level = level
	}
	for name, dst := range map[string]*int64{"from": &q.From, "to": &q.To} {
		if v := qp.Get(name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad "+name, http.StatusBadRequest)
				return
			}
			*dst = n
		}
	}
	if v := qp.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 1000000 {
			http.Error(w, "bad k", http.StatusBadRequest)
			return
		}
		q.K = n
	}
	if cols := qp.Get("cols"); cols != "" {
		q.Columns = strings.Split(cols, ",")
	}
	for _, spec := range qp["where"] {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 || parts[0] == "" {
			http.Error(w, "bad where (want col:min:max)", http.StatusBadRequest)
			return
		}
		p := tsv.Pred{Col: parts[0], Min: math.Inf(-1), Max: math.Inf(1)}
		if parts[1] != "" {
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				http.Error(w, "bad where min", http.StatusBadRequest)
				return
			}
			p.Min = v
		}
		if parts[2] != "" {
			v, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				http.Error(w, "bad where max", http.StatusBadRequest)
				return
			}
			p.Max = v
		}
		q.Where = append(q.Where, p)
	}

	res, err := s.engine.Run(q)
	switch {
	case err == nil:
	case errors.Is(err, tsv.ErrBadQuery), errors.Is(err, tsv.ErrUnknownColumn):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, tsv.ErrNoData):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := struct {
		Aggregation    string   `json:"aggregation"`
		Level          string   `json:"level"`
		From           int64    `json:"from"`
		To             int64    `json:"to"`
		Windows        int      `json:"windows"`
		Files          int      `json:"files"`
		CorruptSkipped int      `json:"corrupt_skipped,omitempty"`
		Columns        []string `json:"columns"`
		Rows           []topRow `json:"rows"`
	}{
		Aggregation: res.Agg, Level: res.Level.Name(),
		From: res.From, To: res.To,
		Windows: res.Windows, Files: res.Files, CorruptSkipped: res.CorruptSkipped,
		Columns: res.Columns, Rows: []topRow{},
	}
	for i := range res.Rows {
		row := topRow{Rank: i + 1, Key: res.Rows[i].Key, Values: map[string]float64{}}
		for c, name := range res.Columns {
			row.Values[name] = res.Rows[i].Values[c]
		}
		out.Rows = append(out.Rows, row)
	}
	writeJSON(w, out)
}

func (s *Server) handleFiles(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "no store attached", http.StatusNotFound)
		return
	}
	agg := r.PathValue("agg")
	type fileInfo struct {
		Level string `json:"level"`
		Start int64  `json:"start"`
		Name  string `json:"name"`
	}
	var files []fileInfo
	for level := tsv.Minutely; level <= tsv.MaxLevel; level++ {
		starts, err := s.store.List(agg, level)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, start := range starts {
			snap := tsv.Snapshot{Aggregation: agg, Level: level, Start: start}
			files = append(files, fileInfo{Level: level.Name(), Start: start, Name: s.store.FileName(&snap)})
		}
	}
	writeJSON(w, files)
}

func (s *Server) handleFile(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "no store attached", http.StatusNotFound)
		return
	}
	agg := r.PathValue("agg")
	levelName := r.PathValue("level")
	start, err := strconv.ParseInt(r.PathValue("start"), 10, 64)
	if err != nil {
		http.Error(w, "bad start", http.StatusBadRequest)
		return
	}
	var level tsv.Level
	found := false
	for l := tsv.Minutely; l <= tsv.MaxLevel; l++ {
		if l.Name() == levelName {
			level = l
			found = true
			break
		}
	}
	if !found || strings.ContainsAny(agg, "/\\") {
		http.Error(w, "bad path", http.StatusBadRequest)
		return
	}
	snap, err := s.store.Get(agg, level, start)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values")
	if _, err := snap.WriteTo(w); err != nil {
		// Too late for a status change; the connection is gone.
		return
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		fmt.Println("webui: encode:", err)
	}
}
