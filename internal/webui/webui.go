package webui

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/tsv"
)

// Server is the HTTP facade. The zero value is not usable; create with
// NewServer. Server is safe for concurrent use.
//
// The server reads transaction counts from the metrics registry the
// engines publish to (there is no per-transaction hook to remember to
// call): wire the same registry into observatory.Config.Metrics, or
// leave Registry nil to use metrics.Default().
type Server struct {
	mu     sync.RWMutex
	latest map[string]*tsv.Snapshot
	store  *tsv.Store // optional

	// Registry is the metrics registry served by /metrics and
	// /api/metricsz and read by /healthz. Set before Handler;
	// nil means metrics.Default().
	Registry *metrics.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and cost CPU, so
	// they are opt-in (the dnsobs -pprof flag).
	EnablePprof bool
	// Sensors, when set, adds its result under the "sensors" key in
	// /healthz — dnsobs wires it to the transport collector's per-sensor
	// liveness so operators see which feeds are up. Declared as func()
	// any to keep webui decoupled from the transport package.
	Sensors func() any

	windows atomic.Uint64
}

// NewServer returns a server; store may be nil when only live snapshots
// are exposed.
func NewServer(store *tsv.Store) *Server {
	return &Server{latest: map[string]*tsv.Snapshot{}, store: store}
}

// OnSnapshot records a freshly dumped snapshot; hook it into the
// pipeline's snapshot callback.
func (s *Server) OnSnapshot(snap *tsv.Snapshot) {
	s.mu.Lock()
	s.latest[snap.Aggregation] = snap
	s.mu.Unlock()
	s.windows.Add(1)
}

// registry returns the effective metrics registry.
func (s *Server) registry() *metrics.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return metrics.Default()
}

// Handler returns the routed http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /api/aggregations", s.handleAggregations)
	mux.HandleFunc("GET /api/top/{agg}", s.handleTop)
	mux.HandleFunc("GET /api/files/{agg}", s.handleFiles)
	mux.HandleFunc("GET /files/{agg}/{level}/{start}", s.handleFile)
	if s.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	health := map[string]any{
		"ok":           true,
		"transactions": s.registry().SumCounter(observatoryIngested),
		"windows":      s.windows.Load(),
	}
	if s.Sensors != nil {
		health["sensors"] = s.Sensors()
	}
	writeJSON(w, health)
}

// observatoryIngested is the engine family /healthz reports. Mirrors
// observatory.MetricIngested; the string is duplicated to keep webui
// free of an import cycle risk and usable with any engine that
// publishes the family.
const observatoryIngested = "dnsobs_engine_ingested_total"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	if err := s.registry().WritePrometheus(w); err != nil {
		// Too late for a status change; the connection is gone.
		return
	}
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.registry().WriteJSON(w); err != nil {
		return
	}
}

func (s *Server) handleAggregations(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.latest))
	for name := range s.latest {
		names = append(names, name)
	}
	s.mu.RUnlock()
	writeJSON(w, names)
}

// topRow is the JSON shape of one object.
type topRow struct {
	Rank   int                `json:"rank"`
	Key    string             `json:"key"`
	Values map[string]float64 `json:"values"`
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	agg := r.PathValue("agg")
	s.mu.RLock()
	snap := s.latest[agg]
	s.mu.RUnlock()
	if snap == nil {
		http.Error(w, "unknown aggregation", http.StatusNotFound)
		return
	}
	n := 50
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > 100000 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	col := r.URL.Query().Get("col")
	if col == "" {
		col = "hits"
	}
	valid := false
	for _, c := range snap.Columns {
		if c == col {
			valid = true
			break
		}
	}
	if !valid {
		http.Error(w, "unknown column", http.StatusBadRequest)
		return
	}
	snap.SortByColumn(col)
	out := struct {
		Aggregation string   `json:"aggregation"`
		WindowStart int64    `json:"window_start"`
		Rows        []topRow `json:"rows"`
	}{Aggregation: agg, WindowStart: snap.Start}
	for i := range snap.Rows {
		if i >= n {
			break
		}
		row := topRow{Rank: i + 1, Key: snap.Rows[i].Key, Values: map[string]float64{}}
		for c, name := range snap.Columns {
			row.Values[name] = snap.Rows[i].Values[c]
		}
		out.Rows = append(out.Rows, row)
	}
	writeJSON(w, out)
}

func (s *Server) handleFiles(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "no store attached", http.StatusNotFound)
		return
	}
	agg := r.PathValue("agg")
	type fileInfo struct {
		Level string `json:"level"`
		Start int64  `json:"start"`
		Name  string `json:"name"`
	}
	var files []fileInfo
	for level := tsv.Minutely; level <= tsv.MaxLevel; level++ {
		starts, err := s.store.List(agg, level)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, start := range starts {
			snap := tsv.Snapshot{Aggregation: agg, Level: level, Start: start}
			files = append(files, fileInfo{Level: level.Name(), Start: start, Name: snap.FileName()})
		}
	}
	writeJSON(w, files)
}

func (s *Server) handleFile(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "no store attached", http.StatusNotFound)
		return
	}
	agg := r.PathValue("agg")
	levelName := r.PathValue("level")
	start, err := strconv.ParseInt(r.PathValue("start"), 10, 64)
	if err != nil {
		http.Error(w, "bad start", http.StatusBadRequest)
		return
	}
	var level tsv.Level
	found := false
	for l := tsv.Minutely; l <= tsv.MaxLevel; l++ {
		if l.Name() == levelName {
			level = l
			found = true
			break
		}
	}
	if !found || strings.ContainsAny(agg, "/\\") {
		http.Error(w, "bad path", http.StatusBadRequest)
		return
	}
	snap, err := s.store.Get(agg, level, start)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values")
	if _, err := snap.WriteTo(w); err != nil {
		// Too late for a status change; the connection is gone.
		return
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		fmt.Println("webui: encode:", err)
	}
}
