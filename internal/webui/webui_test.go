package webui

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/tsv"
)

func snapshotFixture(agg string, start int64) *tsv.Snapshot {
	return &tsv.Snapshot{
		Aggregation: agg,
		Level:       tsv.Minutely,
		Start:       start,
		Columns:     []string{"hits", "nxd"},
		Kinds:       []tsv.Kind{tsv.Counter, tsv.Counter},
		Rows: []tsv.Row{
			{Key: "198.51.100.1", Values: []float64{100, 10}},
			{Key: "198.51.100.2", Values: []float64{300, 200}},
			{Key: "198.51.100.3", Values: []float64{50, 1}},
		},
		Windows: 1,
	}
}

func newTestServer(t *testing.T, withStore bool) (*Server, *httptest.Server) {
	t.Helper()
	var store *tsv.Store
	if withStore {
		var err error
		store, err = tsv.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(store)
	s.Registry = metrics.NewRegistry() // isolate from other tests
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, false)
	// /healthz reads what the engines publish to the registry: no
	// per-transaction hook the wiring could forget.
	s.Registry.Counter(observatoryIngested, "", "engine", "serial").Add(2)
	s.OnSnapshot(snapshotFixture("srvip", 0))
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	var h struct {
		OK           bool   `json:"ok"`
		Transactions uint64 `json:"transactions"`
		Windows      uint64 `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Transactions != 2 || h.Windows != 1 {
		t.Errorf("health = %+v", h)
	}
	if strings.Contains(body, `"sensors"`) {
		t.Errorf("sensors key present without a Sensors hook:\n%s", body)
	}
}

func TestHealthzSensors(t *testing.T) {
	s, ts := newTestServer(t, false)
	type sensor struct {
		Name      string `json:"name"`
		Connected bool   `json:"connected"`
	}
	s.Sensors = func() any { return []sensor{{Name: "edge-1", Connected: true}} }
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	var h struct {
		Sensors []sensor `json:"sensors"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Sensors) != 1 || h.Sensors[0].Name != "edge-1" || !h.Sensors[0].Connected {
		t.Errorf("sensors = %+v", h.Sensors)
	}
}

func TestHealthzProbe(t *testing.T) {
	s, ts := newTestServer(t, false)
	type status struct {
		Issued   uint64 `json:"issued"`
		Answered uint64 `json:"answered"`
	}
	s.Probe = func() any { return status{Issued: 42, Answered: 40} }
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	var h struct {
		Probe *status `json:"probe"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Probe == nil || h.Probe.Issued != 42 || h.Probe.Answered != 40 {
		t.Errorf("probe = %+v", h.Probe)
	}
}

// TestEncDNSEndpoint: /api/encdns serves the Enc hook's status and
// /healthz mirrors it under "enc"; 404 when no hook is wired (the
// plaintext deployment default).
func TestEncDNSEndpoint(t *testing.T) {
	s, ts := newTestServer(t, false)
	if code, _ := get(t, ts.URL+"/api/encdns"); code != 404 {
		t.Fatalf("no-hook code = %d, want 404", code)
	}
	type modeStat struct {
		Mode     string `json:"mode"`
		Messages uint64 `json:"messages"`
	}
	s.Enc = func() any { return []modeStat{{Mode: "doh", Messages: 1234}} }
	code, body := get(t, ts.URL+"/api/encdns")
	if code != 200 {
		t.Fatalf("code %d: %s", code, body)
	}
	var out []modeStat
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Mode != "doh" || out[0].Messages != 1234 {
		t.Errorf("encdns = %+v", out)
	}
	_, body = get(t, ts.URL+"/healthz")
	var h struct {
		Enc []modeStat `json:"enc"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Enc) != 1 || h.Enc[0].Messages != 1234 {
		t.Errorf("healthz enc = %+v", h.Enc)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, false)
	s.Registry.Counter(observatoryIngested, "transactions", "engine", "sharded").Add(7)
	s.Registry.Histogram("dnsobs_engine_flush_seconds", "", metrics.DurationBuckets, "engine", "sharded").Observe(0.002)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PrometheusContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE dnsobs_engine_ingested_total counter",
		`dnsobs_engine_ingested_total{engine="sharded"} 7`,
		"# TYPE dnsobs_engine_flush_seconds histogram",
		`dnsobs_engine_flush_seconds_count{engine="sharded"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestMetricszEndpoint(t *testing.T) {
	s, ts := newTestServer(t, false)
	s.Registry.Gauge("dnsobs_topk_occupancy", "", "agg", "srvip").Set(42)
	code, body := get(t, ts.URL+"/api/metricsz")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	var fams []metrics.JSONFamily
	if err := json.Unmarshal([]byte(body), &fams); err != nil {
		t.Fatalf("metricsz not valid JSON: %v", err)
	}
	if len(fams) != 1 || fams[0].Name != "dnsobs_topk_occupancy" {
		t.Fatalf("families = %+v", fams)
	}
	m := fams[0].Metrics[0]
	if m.Labels["agg"] != "srvip" || m.Value == nil || *m.Value != 42 {
		t.Errorf("metric = %+v", m)
	}
}

func TestPprofGating(t *testing.T) {
	_, ts := newTestServer(t, false)
	if code, _ := get(t, ts.URL+"/debug/pprof/"); code != 404 {
		t.Errorf("pprof served while disabled: %d", code)
	}
	s2 := NewServer(nil)
	s2.Registry = metrics.NewRegistry()
	s2.EnablePprof = true
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, body := get(t, ts2.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: code %d body %.80s", code, body)
	}
}

func TestAggregations(t *testing.T) {
	s, ts := newTestServer(t, false)
	s.OnSnapshot(snapshotFixture("srvip", 0))
	s.OnSnapshot(snapshotFixture("qname", 0))
	code, body := get(t, ts.URL+"/api/aggregations")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	var names []string
	if err := json.Unmarshal([]byte(body), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Errorf("names = %v", names)
	}
}

func TestTop(t *testing.T) {
	s, ts := newTestServer(t, false)
	s.OnSnapshot(snapshotFixture("srvip", 60))
	code, body := get(t, ts.URL+"/api/top/srvip?n=2")
	if code != 200 {
		t.Fatalf("code %d: %s", code, body)
	}
	var out struct {
		Aggregation string `json:"aggregation"`
		WindowStart int64  `json:"window_start"`
		Rows        []struct {
			Rank   int                `json:"rank"`
			Key    string             `json:"key"`
			Values map[string]float64 `json:"values"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.WindowStart != 60 || len(out.Rows) != 2 {
		t.Fatalf("out = %+v", out)
	}
	if out.Rows[0].Key != "198.51.100.2" || out.Rows[0].Values["hits"] != 300 {
		t.Errorf("top row = %+v", out.Rows[0])
	}

	// Sort by another column.
	code, body = get(t, ts.URL+"/api/top/srvip?n=1&col=nxd")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Rows[0].Values["nxd"] != 200 {
		t.Errorf("nxd-sorted top = %+v", out.Rows[0])
	}
}

func TestTopErrors(t *testing.T) {
	s, ts := newTestServer(t, false)
	s.OnSnapshot(snapshotFixture("srvip", 0))
	for path, want := range map[string]int{
		"/api/top/unknown":       404,
		"/api/top/srvip?n=0":     400,
		"/api/top/srvip?n=x":     400,
		"/api/top/srvip?col=zzz": 400,
	} {
		if code, _ := get(t, ts.URL+path); code != want {
			t.Errorf("%s: code %d, want %d", path, code, want)
		}
	}
}

func TestFilesAndDownload(t *testing.T) {
	s, ts := newTestServer(t, true)
	snap := snapshotFixture("srvip", 120)
	if err := s.store.Put(snap); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/api/files/srvip")
	if code != 200 {
		t.Fatalf("files code %d", code)
	}
	if !strings.Contains(body, "srvip-min-120.tsv") {
		t.Errorf("files body: %s", body)
	}
	code, body = get(t, ts.URL+"/files/srvip/min/120")
	if code != 200 {
		t.Fatalf("download code %d", code)
	}
	if !strings.HasPrefix(body, "#key\thits\tnxd\n") {
		t.Errorf("tsv body:\n%s", body)
	}
	if code, _ := get(t, ts.URL+"/files/srvip/min/999"); code != 404 {
		t.Errorf("missing file code %d", code)
	}
	if code, _ := get(t, ts.URL+"/files/srvip/century/120"); code != 400 {
		t.Errorf("bad level code %d", code)
	}
}

func TestStorelessFileEndpoints(t *testing.T) {
	_, ts := newTestServer(t, false)
	if code, _ := get(t, ts.URL+"/api/files/srvip"); code != 404 {
		t.Errorf("files without store: %d", code)
	}
	if code, _ := get(t, ts.URL+"/files/srvip/min/0"); code != 404 {
		t.Errorf("file without store: %d", code)
	}
}

func detectFixture(agg string, cols []string, start int64) *tsv.Snapshot {
	return &tsv.Snapshot{
		Aggregation: agg,
		Level:       tsv.Minutely,
		Start:       start,
		Columns:     cols,
		Kinds:       make([]tsv.Kind, len(cols)),
		Rows: []tsv.Row{
			{Key: "low.example.", Values: make([]float64, len(cols))},
			{Key: "hot.example.", Values: func() []float64 {
				v := make([]float64, len(cols))
				for i := range v {
					v[i] = float64(10 * (i + 1))
				}
				return v
			}()},
		},
		Windows: 1,
	}
}

func TestDetectEndpoint(t *testing.T) {
	s, ts := newTestServer(t, false)

	// 404 until a detection window lands.
	if code, _ := get(t, ts.URL+"/api/detect"); code != 404 {
		t.Fatalf("no-detect code = %d, want 404", code)
	}

	s.OnSnapshot(detectFixture(detectESLD, []string{"score", "hits", "rate", "entropy", "sublen"}, 120))
	s.OnSnapshot(detectFixture(detectNOD, []string{"hits", "first_seen"}, 120))
	code, body := get(t, ts.URL+"/api/detect")
	if code != 200 {
		t.Fatalf("code %d: %s", code, body)
	}
	var out struct {
		WindowStart  int64 `json:"window_start"`
		HeavyHitters []struct {
			Rank   int                `json:"rank"`
			Key    string             `json:"key"`
			Values map[string]float64 `json:"values"`
		} `json:"heavy_hitters"`
		NewlyObserved []struct {
			Key string `json:"key"`
		} `json:"newly_observed"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.WindowStart != 120 {
		t.Errorf("window_start = %d, want 120", out.WindowStart)
	}
	if len(out.HeavyHitters) != 2 || out.HeavyHitters[0].Key != "hot.example." {
		t.Errorf("heavy hitters ranked wrong: %+v", out.HeavyHitters)
	}
	if out.HeavyHitters[0].Rank != 1 || out.HeavyHitters[0].Values["score"] != 10 {
		t.Errorf("rank/values wrong: %+v", out.HeavyHitters[0])
	}
	if len(out.NewlyObserved) != 2 || out.NewlyObserved[0].Key != "hot.example." {
		t.Errorf("newly observed ranked wrong: %+v", out.NewlyObserved)
	}

	// ?n caps each list; bad n rejected.
	_, body = get(t, ts.URL+"/api/detect?n=1")
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.HeavyHitters) != 1 || len(out.NewlyObserved) != 1 {
		t.Errorf("n=1 cap not applied: %d/%d", len(out.HeavyHitters), len(out.NewlyObserved))
	}
	if code, _ := get(t, ts.URL+"/api/detect?n=0"); code != 400 {
		t.Errorf("bad n code = %d, want 400", code)
	}
}

func TestDetectEndpointOneSided(t *testing.T) {
	// Only the NOD snapshot present: the endpoint still serves, with an
	// empty heavy-hitter list and the NOD window start.
	s, ts := newTestServer(t, false)
	s.OnSnapshot(detectFixture(detectNOD, []string{"hits", "first_seen"}, 60))
	code, body := get(t, ts.URL+"/api/detect")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	var out struct {
		WindowStart   int64             `json:"window_start"`
		HeavyHitters  []json.RawMessage `json:"heavy_hitters"`
		NewlyObserved []json.RawMessage `json:"newly_observed"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.WindowStart != 60 || len(out.HeavyHitters) != 0 || len(out.NewlyObserved) != 2 {
		t.Errorf("one-sided response wrong: %s", body)
	}
}
