// Package dnsobservatory reproduces "DNS Observatory: The Big Picture
// of the DNS" (Foremski, Gasser, Moura — IMC 2019) as a Go library.
//
// The public API lives in the dnsobs subpackage; the cmd directory has
// the runnable tools (dnsgen, dnsobs, experiments); examples holds
// self-contained scenario walkthroughs. The benchmark harness in this
// package regenerates every table and figure of the paper's evaluation
// (see DESIGN.md and EXPERIMENTS.md).
package dnsobservatory
