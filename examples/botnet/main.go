// Botnet monitoring (paper §3.2): a Mylobot-style DGA floods the gTLD
// servers with NXDOMAIN lookups for nonexistent .com domains. Watching
// the rcode and srvip aggregations shows popular nameservers acting as
// the DNS's "first line of defence" against generated names.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"dnsobservatory/dnsobs"
)

func main() {
	simCfg := dnsobs.DefaultSimulationConfig()
	simCfg.Duration = 300
	simCfg.QPS = 2000
	simCfg.SLDs = 1500
	// Crank the DGA up mid-run by doubling its weight from the start;
	// the interesting signal is the NXD concentration, not the timing.
	simCfg.Mix.Botnet = 0.12

	var rcodeSnaps, srvSnaps []*dnsobs.Snapshot
	pipeCfg := dnsobs.DefaultPipelineConfig()
	pipeCfg.SkipFreshObjects = false
	pipe := dnsobs.NewPipeline(pipeCfg,
		[]dnsobs.Aggregation{
			{Name: "rcode", K: 16, Key: dnsobs.RCodeKey, NoAdmitter: true},
			{Name: "srvip", K: 2000, Key: dnsobs.SrvIPKey},
		},
		func(s *dnsobs.Snapshot) {
			switch s.Aggregation {
			case "rcode":
				rcodeSnaps = append(rcodeSnaps, s)
			case "srvip":
				srvSnaps = append(srvSnaps, s)
			}
		})

	sim := dnsobs.NewSimulation(simCfg)
	gtld := map[netip.Addr]bool{}
	for _, s := range sim.Infra.GTLDServers {
		gtld[s.Addr] = true
	}
	roots := map[netip.Addr]bool{}
	for _, s := range sim.Infra.RootServers {
		roots[s.Addr] = true
	}

	var summarizer dnsobs.Summarizer
	var sum dnsobs.Summary
	sim.Run(func(tx *dnsobs.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			log.Fatal(err)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(simCfg.Start).Seconds())
	})
	pipe.Flush()

	// Global RCODE mix.
	rcodes, err := dnsobs.AggregateSnapshots(rcodeSnaps)
	if err != nil {
		log.Fatal(err)
	}
	rcodes.SortByColumn("hits")
	fmt.Println("global RCODE mix (per minute):")
	var total float64
	for i := range rcodes.Rows {
		v, _ := rcodes.Value(&rcodes.Rows[i], "hits")
		total += v
	}
	for i := range rcodes.Rows {
		row := &rcodes.Rows[i]
		hits, _ := rcodes.Value(row, "hits")
		fmt.Printf("  %-12s %7.0f q/min (%.1f%%)\n", row.Key, hits, 100*hits/total)
	}

	// Where does the NXDOMAIN land?
	servers, err := dnsobs.AggregateSnapshots(srvSnaps)
	if err != nil {
		log.Fatal(err)
	}
	servers.SortByColumn("nxd")
	fmt.Println("\ntop NXDOMAIN sinks (the first line of defence):")
	for i := 0; i < 8 && i < len(servers.Rows); i++ {
		row := &servers.Rows[i]
		nxd, _ := servers.Value(row, "nxd")
		hits, _ := servers.Value(row, "hits")
		kind := "hosting"
		if a, err := netip.ParseAddr(row.Key); err == nil {
			switch {
			case gtld[a]:
				kind = "gTLD registry"
			case roots[a]:
				kind = "root server"
			}
		}
		fmt.Printf("  %-16s %7.0f NXD/min of %7.0f q/min (%4.0f%%)  [%s]\n",
			row.Key, nxd, hits, 100*nxd/hits, kind)
	}
}
