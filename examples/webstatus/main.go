// Web status: run the Observatory over live synthetic traffic with the
// parallel pipeline and serve the current top-k lists over HTTP while
// the stream flows — the paper's planned public web interface, end to
// end. The program prints a few polls of its own API and exits.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"dnsobservatory/dnsobs"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/webui"
)

func main() {
	// Serve on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// One registry shared by the engine (which publishes ingest counts)
	// and the web UI (whose /healthz and /metrics read them) — no
	// per-transaction counting hook to remember.
	reg := metrics.Default()
	ui := webui.NewServer(nil)
	ui.Registry = reg
	srv := &http.Server{Handler: ui.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("web UI listening on %s\n\n", base)

	// Observatory over a parallel pipeline.
	cfg := dnsobs.DefaultPipelineConfig()
	cfg.SkipFreshObjects = false
	cfg.Metrics = reg
	pipe := observatory.NewParallel(cfg,
		[]dnsobs.Aggregation{
			{Name: "srvip", K: 1000, Key: dnsobs.SrvIPKey},
			{Name: "qtype", K: 32, Key: dnsobs.QTypeKey, NoAdmitter: true},
		},
		ui.OnSnapshot)

	simCfg := dnsobs.DefaultSimulationConfig()
	simCfg.Duration = 180
	simCfg.QPS = 1000
	simCfg.Resolvers = 80
	simCfg.SLDs = 800

	var summarizer dnsobs.Summarizer
	var sum dnsobs.Summary
	sim := dnsobs.NewSimulation(simCfg)
	stats := sim.Run(func(tx *dnsobs.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			log.Fatal(err)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(simCfg.Start).Seconds())
	})
	pipe.Close()
	fmt.Printf("streamed %d transactions through the pipeline\n\n", stats.Transactions)

	// Poll our own API like a dashboard would.
	for _, path := range []string{
		"/healthz",
		"/api/aggregations",
		"/api/top/qtype?n=5",
		"/api/top/srvip?n=3&col=nxd",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		var v any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		pretty, _ := json.MarshalIndent(v, "  ", "  ")
		fmt.Printf("GET %s\n  %s\n\n", path, pretty)
	}

	_ = srv.Close()
}
