// Happy Eyeballs scenario (paper §5): an IPv4-only domain configures a
// negative-caching TTL 50 times shorter than its A record TTL. The
// dual-stack clients' AAAA queries then dominate its authoritative
// traffic as empty (NoData) responses — until IPv6 is enabled halfway
// through, when the empty responses vanish while query volume holds.
package main

import (
	"fmt"
	"log"

	"dnsobservatory/dnsobs"
)

func main() {
	simCfg := dnsobs.DefaultSimulationConfig()
	simCfg.Duration = 900
	simCfg.QPS = 1500
	simCfg.SLDs = 800
	simCfg.HEShare = 0.8 // most clients are dual-stack

	const enableAt = 600

	var snapshots []*dnsobs.Snapshot
	pipeCfg := dnsobs.DefaultPipelineConfig()
	pipeCfg.SkipFreshObjects = false
	pipe := dnsobs.NewPipeline(pipeCfg,
		[]dnsobs.Aggregation{{Name: "esld", K: 5000, Key: dnsobs.ESLDKey(nil)}},
		func(s *dnsobs.Snapshot) { snapshots = append(snapshots, s) })

	sim := dnsobs.NewSimulation(simCfg)
	// Misconfigure a popular domain like the paper's network-time hosts:
	// A TTL 750 s, negative TTL 15 s, no AAAA records.
	victim := sim.Universe.SLDs[3]
	victim.ATTL = 750
	victim.NegTTL = 15
	victim.IPv6 = false
	for _, f := range victim.FQDNs {
		f.V6Override = 0
	}
	sim.Schedule(dnsobs.V6EnableEvent(enableAt, victim.Name))
	fmt.Printf("victim domain: %s (A TTL %d, negative TTL %d, IPv6 off until t=%ds)\n\n",
		victim.Name, victim.ATTL, victim.NegTTL, enableAt)

	var summarizer dnsobs.Summarizer
	var sum dnsobs.Summary
	sim.Run(func(tx *dnsobs.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			log.Fatal(err)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(simCfg.Start).Seconds())
	})
	pipe.Flush()

	fmt.Println("minute  queries/min  empty-AAAA share")
	for _, s := range snapshots {
		row := s.Find(victim.Name)
		if row == nil {
			continue
		}
		hits, _ := s.Value(row, "hits")
		nil6, _ := s.Value(row, "ok6nil")
		marker := ""
		if s.Start == enableAt {
			marker = "   <- IPv6 enabled"
		}
		if hits > 0 {
			fmt.Printf("%6d  %11.0f  %15.0f%%%s\n", s.Start/60, hits, 100*nil6/hits, marker)
		}
	}
}
