// Quickstart: generate two minutes of synthetic passive-DNS traffic,
// run it through the Observatory pipeline, and print the top ten
// authoritative nameservers with their traffic features — the smallest
// end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"dnsobservatory/dnsobs"
)

func main() {
	// A small synthetic Internet: 100 resolvers, 1000 domains.
	simCfg := dnsobs.DefaultSimulationConfig()
	simCfg.Duration = 120
	simCfg.QPS = 1000
	simCfg.Resolvers = 100
	simCfg.SLDs = 1000

	// Track the top 500 nameserver IPs, snapshot every 60 s.
	var snapshots []*dnsobs.Snapshot
	pipeCfg := dnsobs.DefaultPipelineConfig()
	pipeCfg.SkipFreshObjects = false // keep the demo output full
	pipe := dnsobs.NewPipeline(pipeCfg,
		[]dnsobs.Aggregation{{Name: "srvip", K: 500, Key: dnsobs.SrvIPKey}},
		func(s *dnsobs.Snapshot) { snapshots = append(snapshots, s) })

	// Feed the stream: parse raw packets, summarize, ingest.
	var summarizer dnsobs.Summarizer
	var sum dnsobs.Summary
	sim := dnsobs.NewSimulation(simCfg)
	stats := sim.Run(func(tx *dnsobs.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			log.Fatalf("summarize: %v", err)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(simCfg.Start).Seconds())
	})
	pipe.Flush()

	fmt.Printf("processed %d transactions (%d client queries, %d cache hits)\n",
		stats.Transactions, stats.ClientQueries, stats.CacheHits)
	fmt.Printf("collected %d minutely snapshots\n\n", len(snapshots))

	// Aggregate the whole run and show the busiest nameservers.
	total, err := dnsobs.AggregateSnapshots(snapshots)
	if err != nil {
		log.Fatal(err)
	}
	total.SortByColumn("hits")
	fmt.Println("top 10 authoritative nameservers by queries/minute:")
	for i, row := range total.Rows {
		if i == 10 {
			break
		}
		hits, _ := total.Value(&row, "hits")
		delay, _ := total.Value(&row, "delay_q50")
		nxd, _ := total.Value(&row, "nxd")
		qnames, _ := total.Value(&row, "qnamesa")
		fmt.Printf("%2d. %-16s %8.1f q/min  median delay %6.1f ms  NXD %5.1f%%  ~%.0f names/min\n",
			i+1, row.Key, hits, delay, 100*nxd/hits, qnames)
	}
}
