// TTL watch (paper §4.2): monitor the hourly TTL modes of the most
// popular authoritatively-answered FQDNs and flag domains whose
// operators appear to be staging an infrastructure change — the classic
// pattern is cutting NS/A TTLs ahead of a provider switch.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"dnsobservatory/dnsobs"
)

func main() {
	simCfg := dnsobs.DefaultSimulationConfig()
	simCfg.Duration = 1200
	simCfg.QPS = 1500
	simCfg.SLDs = 800

	var snapshots []*dnsobs.Snapshot
	pipeCfg := dnsobs.DefaultPipelineConfig()
	pipeCfg.SkipFreshObjects = false
	pipe := dnsobs.NewPipeline(pipeCfg,
		[]dnsobs.Aggregation{{Name: "aafqdn", K: 10000, Key: dnsobs.AAFQDNKey}},
		func(s *dnsobs.Snapshot) { snapshots = append(snapshots, s) })

	sim := dnsobs.NewSimulation(simCfg)
	// Stage two changes: a provider switch with the traditional TTL
	// slash, and a renumbering into a cloud with a TTL raise after.
	mover := sim.Universe.SLDs[4]
	mover.ATTL = 600
	sim.Schedule(dnsobs.TTLChangeEvent(600, mover.Name, 10))
	sim.Schedule(dnsobs.NSChangeEvent(660, mover.Name, "dnsv2.example"))

	renum := sim.Universe.SLDs[6]
	renum.ATTL = 600
	sim.Schedule(dnsobs.RenumberEvent(600, renum.Name,
		netip.MustParseAddr("203.0.113.80"), 38400))
	fmt.Printf("staged: %s switches DNS provider (TTL 600->10), %s renumbers (TTL 600->38400)\n\n",
		mover.Name, renum.Name)

	var summarizer dnsobs.Summarizer
	var sum dnsobs.Summary
	sim.Run(func(tx *dnsobs.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			log.Fatal(err)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(simCfg.Start).Seconds())
	})
	pipe.Flush()

	// Watch the per-minute TTL mode of every tracked FQDN and report
	// significant changes (>=10% of responses behind the new value).
	lastTTL := map[string]float64{}
	fmt.Println("detected TTL changes:")
	for _, s := range snapshots {
		for i := range s.Rows {
			row := &s.Rows[i]
			ttl, _ := s.Value(row, "ttl1")
			share, _ := s.Value(row, "ttl1_share")
			if share < 0.1 {
				continue
			}
			if prev, ok := lastTTL[row.Key]; ok && prev != ttl {
				verdict := "TTL decrease (change staged?)"
				if ttl > prev {
					verdict = "TTL increase (change completed?)"
				}
				fmt.Printf("  t=%4ds  %-40s %6.0f -> %-6.0f  %s\n",
					s.Start, row.Key, prev, ttl, verdict)
			}
			lastTTL[row.Key] = ttl
		}
	}
}
