#!/bin/sh
# Coverage gate: the wire-facing packages must stay well tested. The
# frame decoder, the transport state machines (reconnect, overload,
# drain, WAL spill/dedup), the write-ahead log with its crash-recovery
# scan, the fleet ring/router/merge, the snapshot store with its binary
# columnar codec, the query HTTP surface, and the active probe engine
# (cache, singleflight, rate limits, retry ladder), and the streaming
# detection layer (partitioned heavy-hitter/NOD state whose serial and
# sharded deployments must merge byte-identically), and the encrypted
# client-leg model with its observation codec are exactly the code that
# fails in production in ways unit demos never hit, so CI refuses any
# change that drops their statement coverage below the floor.
#
# Run from the repository root: sh scripts/cover_gate.sh
set -eu

FLOOR=80

fail=0
for pkg in ./internal/transport/ ./internal/wal/ ./internal/fleet/ ./internal/sie/ ./internal/tsv/ ./internal/webui/ ./internal/probe/ ./internal/detect/ ./internal/encwire/; do
    out=$("$(command -v go)" test -count=1 -cover "$pkg" 2>&1) || {
        printf '%s\n' "$out" >&2
        echo "cover gate: tests failed in $pkg" >&2
        exit 1
    }
    pct=$(printf '%s\n' "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "cover gate: no coverage figure for $pkg" >&2
        fail=1
        continue
    fi
    # Integer compare on the whole part: 79.9 fails, 80.0 passes.
    whole=${pct%.*}
    if [ "$whole" -lt "$FLOOR" ]; then
        echo "cover gate: $pkg at ${pct}% is below the ${FLOOR}% floor" >&2
        fail=1
    else
        echo "cover gate: $pkg ${pct}% (floor ${FLOOR}%)"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "cover gate: FAILED" >&2
    exit 1
fi
echo "cover gate: ok"
