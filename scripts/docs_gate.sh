#!/bin/sh
# Docs gate: the documentation contracts CI holds the tree to.
#
#  1. Every internal/* package carries a package-level doc.go.
#  2. Every flag README.md claims a command accepts is one the command
#     actually prints in its -h output — README flag references must
#     not drift from the binaries (the PR 1–3 lesson: -sharded,
#     -chaos and friends shipped undocumented).
#  3. Every dnsobs_* metric family named in source is documented in
#     docs/METRICS.md — a registered family that never reaches the
#     reference is invisible to operators (the PR 9 lesson: the probe
#     and WAL families were only caught documented because someone
#     checked by hand).
#
# Run from the repository root: sh scripts/docs_gate.sh
set -eu

fail=0

# -- 1: package docs ---------------------------------------------------
for dir in internal/*/; do
    if [ ! -f "${dir}doc.go" ]; then
        echo "docs gate: ${dir} is missing doc.go" >&2
        fail=1
    fi
done

# -- 2: README flags vs -h output --------------------------------------
# Collect every -flag README mentions per command (lines and inline
# references of the form `go run ./cmd/NAME ... -flag`), then check it
# against the flags the command registers.
for cmd in cmd/*/; do
    name=$(basename "$cmd")
    help=$("$(command -v go)" run "./$cmd" -h 2>&1 || true)
    # Flags the command really has, one per line, without the dash.
    real=$(printf '%s\n' "$help" | sed -n 's/^  -\([a-z0-9-]*\).*/\1/p')
    # Flags README associates with this command: the invocation line
    # itself plus backslash-continuation lines. A flag is a dash
    # preceded by whitespace, so observatory-data or a piped `grep -v`
    # on another line never count.
    mentioned=$(awk -v cmd="$name" '
        cont { print; cont = /\\$/; next }
        /go run \.\/cmd\// && $0 ~ "go run \\./cmd/" cmd { print; cont = /\\$/ }
    ' README.md | grep -oE '(^|[[:space:]])-[a-z][a-z0-9-]*' \
        | sed -e 's/^[[:space:]]*//' -e 's/^-//' | sort -u)
    for f in $mentioned; do
        if ! printf '%s\n' "$real" | grep -qx "$f"; then
            echo "docs gate: README references '$name -$f' but '$name -h' does not print it" >&2
            fail=1
        fi
    done
done

# -- 3: metric families vs docs/METRICS.md -----------------------------
# Every family literal in non-test source must appear in the metrics
# reference. Matching the quoted literal keeps label names, bucket
# suffixes and test fixtures out of the comparison.
families=$(grep -rhoE '"dnsobs_[a-z0-9_]+"' \
    --include='*.go' --exclude='*_test.go' internal cmd \
    | tr -d '"' | sort -u)
for fam in $families; do
    if ! grep -q "\`$fam\`" docs/METRICS.md; then
        echo "docs gate: metric family '$fam' is registered in source but undocumented in docs/METRICS.md" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs gate: FAILED" >&2
    exit 1
fi
echo "docs gate: ok"
