package dnsobservatory_test

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (each regenerates the artifact end to end from
// synthetic traffic), micro-benchmarks for the stream-processing hot
// path, and ablations for the design choices called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-experiment benchmarks use a reduced scenario scale so a full
// sweep stays in minutes; cmd/experiments regenerates the same artifacts
// at full laptop scale.

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"runtime"
	"testing"

	"dnsobservatory/internal/bloom"
	"dnsobservatory/internal/detect"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/experiments"
	"dnsobservatory/internal/features"
	"dnsobservatory/internal/hll"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/spacesaving"
	"dnsobservatory/internal/tsv"
)

// benchCtx builds a small-scale experiment context per benchmark.
func benchCtx() *experiments.Context {
	return experiments.NewContext(experiments.Options{Scale: 0.2, Seed: 7})
}

// runExperiment measures one full regeneration of a paper artifact.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := experiments.Find(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh context per iteration: the run is the artifact.
		if err := e.Run(benchCtx(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2TrafficDistributions(b *testing.B) { runExperiment(b, "fig2") }
func BenchmarkTable1ASOrganizations(b *testing.B)    { runExperiment(b, "tab1") }
func BenchmarkTable2QTypes(b *testing.B)             { runExperiment(b, "tab2") }
func BenchmarkFig3ResponseDelays(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkTable3QNameMinimization(b *testing.B)  { runExperiment(b, "tab3") }
func BenchmarkFig4Representativeness(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5ServersOverTime(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6HilbertHeatmap(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig7TTLSlash(b *testing.B)             { runExperiment(b, "fig7") }
func BenchmarkFig8TTLvsTraffic(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkTable4TTLChangeClasses(b *testing.B)   { runExperiment(b, "tab4") }
func BenchmarkFig9NegativeCaching(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkIPv6Enablement(b *testing.B)           { runExperiment(b, "v6on") }

// ---- hot-path micro-benchmarks ----

// BenchmarkPipelineIngest measures the end-to-end per-transaction cost
// of the Observatory core: summary → 8 aggregations → features.
func BenchmarkPipelineIngest(b *testing.B) {
	cfg := simnet.DefaultConfig()
	cfg.Duration = 30
	cfg.QPS = 2000
	sim := simnet.New(cfg)
	var sums []sie.Summary
	var s sie.Summarizer
	sim.Run(func(tx *sie.Transaction) {
		var sum sie.Summary
		if err := s.Summarize(tx, &sum); err == nil {
			// Deep-copy slices out of the reused buffers.
			sum.V4Addrs = append([]netip.Addr(nil), sum.V4Addrs...)
			sum.V6Addrs = append([]netip.Addr(nil), sum.V6Addrs...)
			sum.AnswerTTLs = append([]uint32(nil), sum.AnswerTTLs...)
			sum.NSTTLs = append([]uint32(nil), sum.NSTTLs...)
			sum.NSNames = append([]string(nil), sum.NSNames...)
			sums = append(sums, sum)
		}
	})
	pipe := observatory.New(observatory.DefaultConfig(), observatory.StandardAggregations(0.01), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := &sums[i%len(sums)]
		pipe.Ingest(sum, float64(i)/2000)
	}
}

// parallelBenchSummaries prebuilds a deep-copied summary corpus shared
// by the parallel-ingest benchmark variants.
func parallelBenchSummaries() []sie.Summary {
	cfg := simnet.DefaultConfig()
	cfg.Duration = 30
	cfg.QPS = 2000
	sim := simnet.New(cfg)
	var sums []sie.Summary
	var s sie.Summarizer
	sim.Run(func(tx *sie.Transaction) {
		var sum sie.Summary
		if err := s.Summarize(tx, &sum); err == nil {
			sum.V4Addrs = append([]netip.Addr(nil), sum.V4Addrs...)
			sum.V6Addrs = append([]netip.Addr(nil), sum.V6Addrs...)
			sum.AnswerTTLs = append([]uint32(nil), sum.AnswerTTLs...)
			sum.NSTTLs = append([]uint32(nil), sum.NSTTLs...)
			sum.NSNames = append([]string(nil), sum.NSNames...)
			sums = append(sums, sum)
		}
	})
	return sums
}

// BenchmarkParallelIngest compares the three ingest engines on the same
// 8-aggregation load: the serial Pipeline, the per-aggregation Parallel
// fan-out, and the key-hash-sharded engine. Run with -cpu 1,4 to see the
// scaling behaviour; BENCH_1.json records the harness baseline.
func BenchmarkParallelIngest(b *testing.B) {
	sums := parallelBenchSummaries()
	cfg := observatory.DefaultConfig()
	b.Run("serial", func(b *testing.B) {
		pipe := observatory.New(cfg, observatory.StandardAggregations(0.01), nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipe.Ingest(&sums[i%len(sums)], float64(i)/2000)
		}
	})
	b.Run("peragg", func(b *testing.B) {
		pipe := observatory.NewParallel(cfg, observatory.StandardAggregations(0.01), nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipe.Ingest(&sums[i%len(sums)], float64(i)/2000)
		}
		b.StopTimer()
		pipe.Close()
	})
	b.Run("sharded", func(b *testing.B) {
		eng := observatory.NewSharded(observatory.ShardedConfig{Config: cfg},
			observatory.StandardAggregations(0.01), nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Ingest(&sums[i%len(sums)], float64(i)/2000)
		}
		b.StopTimer()
		eng.Close()
	})
	b.Run("sharded-zerocopy", func(b *testing.B) {
		eng := observatory.NewSharded(observatory.ShardedConfig{Config: cfg},
			observatory.StandardAggregations(0.01), nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf := eng.Borrow()
			buf.CopyFrom(&sums[i%len(sums)])
			eng.IngestShared(buf, float64(i)/2000)
		}
		b.StopTimer()
		eng.Close()
	})
}

// BenchmarkDetectIngest measures the detection layer's ingest overhead
// on the standard 8-aggregation load: the serial and sharded engines
// with detection off vs on. The detect-on delta is the per-transaction
// price of eSLD extraction, information-content folding, and the
// rotating NOD seen-set; BENCH_9.json records the budget (≤ 10 %).
func BenchmarkDetectIngest(b *testing.B) {
	sums := parallelBenchSummaries()
	run := func(b *testing.B, detectOn bool, sharded bool) {
		cfg := observatory.DefaultConfig()
		if detectOn {
			dc := detect.DefaultConfig()
			cfg.Detect = &dc
		}
		b.ReportAllocs()
		if sharded {
			eng := observatory.NewSharded(observatory.ShardedConfig{Config: cfg},
				observatory.StandardAggregations(0.01), nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Ingest(&sums[i%len(sums)], float64(i)/2000)
			}
			b.StopTimer()
			eng.Close()
			return
		}
		pipe := observatory.New(cfg, observatory.StandardAggregations(0.01), nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipe.Ingest(&sums[i%len(sums)], float64(i)/2000)
		}
		b.StopTimer()
		pipe.Flush()
	}
	b.Run("serial-off", func(b *testing.B) { run(b, false, false) })
	b.Run("serial-on", func(b *testing.B) { run(b, true, false) })
	b.Run("sharded-off", func(b *testing.B) { run(b, false, true) })
	b.Run("sharded-on", func(b *testing.B) { run(b, true, true) })
}

// snapshotBenchSets builds a corpus of feature sets populated with a
// heavy-tail mix of traffic: a few hot objects that see thousands of
// distinct values and a long tail of objects that see a handful — the
// shape of a real Top-k table.
func snapshotBenchSets(n int) []*features.Set {
	sums := parallelBenchSummaries()
	sets := make([]*features.Set, n)
	for i := range sets {
		sets[i] = features.NewSet(features.Config{HLLPrecision: 10})
		obs := 3 // tail object: a few hits
		if i%100 == 0 {
			obs = 2000 // hot object: thousands
		}
		for j := 0; j < obs; j++ {
			sets[i].Observe(&sums[(i*131+j)%len(sums)])
		}
	}
	return sets
}

// BenchmarkSnapshotRowExtract measures per-row snapshot extraction —
// features.Set.Values, dominated by the 10 HLL Estimate calls per row.
// At every window dump this runs once per tracked object per
// aggregation (×K ×8).
func BenchmarkSnapshotRowExtract(b *testing.B) {
	sets := snapshotBenchSets(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets[i%len(sets)].Values(1.0)
	}
}

// BenchmarkFeatureSetBytes reports the steady-state heap bytes per
// tracked object: the live footprint of a feature set that has observed
// tail-like traffic (the vast majority of Top-k entries). Reported as
// bytes/object via ReadMemStats around a batch of live sets.
func BenchmarkFeatureSetBytes(b *testing.B) {
	sums := parallelBenchSummaries()
	const objects = 2000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	sets := make([]*features.Set, objects)
	for i := range sets {
		sets[i] = features.NewSet(features.Config{HLLPrecision: 10})
		for j := 0; j < 3; j++ { // tail object: a few hits per window
			sets[i].Observe(&sums[(i*131+j)%len(sums)])
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	perObj := float64(after.HeapAlloc-before.HeapAlloc) / objects
	for i := 0; i < b.N; i++ {
		_ = sets[i%len(sets)].Hits // keep sets live across the measurement
	}
	runtime.KeepAlive(sums) // the corpus must stay live between readings
	b.ReportMetric(perObj, "bytes/object")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkCascade measures the full time-aggregation cascade: 3
// aggregations × 60 minutely files each, cascaded up to hourly. Setup
// (writing the minutely inputs) runs with the timer stopped.
func BenchmarkCascade(b *testing.B) {
	aggs := []string{"srvip", "esld", "qname"}
	mkSnap := func(agg string, start int64) *tsv.Snapshot {
		cols, kinds := []string{"hits", "qdots"}, []tsv.Kind{tsv.Counter, tsv.Gauge}
		s := &tsv.Snapshot{
			Aggregation: agg, Level: tsv.Minutely, Start: start,
			Columns: cols, Kinds: kinds, TotalBefore: 100, TotalAfter: 90, Windows: 1,
		}
		for r := 0; r < 200; r++ {
			s.Rows = append(s.Rows, tsv.Row{
				Key:    fmt.Sprintf("obj-%03d", r),
				Values: []float64{float64(200 - r), 2.5},
			})
		}
		return s
	}
	run := func(b *testing.B, parallelism int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store, err := tsv.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			store.Parallelism = parallelism
			for _, agg := range aggs {
				for m := int64(0); m < 60; m++ {
					if err := store.Put(mkSnap(agg, m*60)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StartTimer()
			if err := store.CascadeAll(aggs, 3600); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("pooled", func(b *testing.B) { run(b, 0) })
}

// BenchmarkMetricsRecord measures the instrumentation record path the
// ingest engines run per transaction: counter increment, gauge store,
// histogram observation. All three must stay alloc-free — the metrics
// layer rides on the hot path of every engine.
func BenchmarkMetricsRecord(b *testing.B) {
	reg := metrics.NewRegistry()
	c := reg.Counter("bench_events_total", "", "engine", "serial")
	g := reg.Gauge("bench_depth", "")
	h := reg.Histogram("bench_flush_seconds", "", metrics.DurationBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i%1000) / 4e5)
	}
}

// BenchmarkSummarize measures raw-packet parsing into a Summary.
func BenchmarkSummarize(b *testing.B) {
	cfg := simnet.DefaultConfig()
	cfg.Duration = 5
	cfg.QPS = 500
	sim := simnet.New(cfg)
	var frames [][]byte
	sim.Run(func(tx *sie.Transaction) {
		frames = append(frames, tx.Append(nil))
	})
	var s sie.Summarizer
	var tx sie.Transaction
	var sum sie.Summary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Unmarshal(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
		if err := s.Summarize(&tx, &sum); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDNSMessageUnpack measures the wire-format decoder alone.
func BenchmarkDNSMessageUnpack(b *testing.B) {
	m := &dnswire.Message{
		ID:    1,
		Flags: dnswire.Flags{Response: true, Authoritative: true},
		Questions: []dnswire.Question{
			{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
		Answers: []dnswire.RR{
			{Name: "www.example.com.", Type: dnswire.TypeCNAME, Class: dnswire.ClassINET, TTL: 300,
				Data: dnswire.CNAMERData{Target: "edge.example.com."}},
			{Name: "edge.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 60,
				Data: dnswire.ARData{Addr: addr4(203, 0, 113, 7)}},
		},
		Authority: []dnswire.RR{
			{Name: "example.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 86400,
				Data: dnswire.NSRData{NS: "ns1.example.com."}},
		},
	}
	wire, err := m.Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	var out dnswire.Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceSavingObserve measures top-k tracking on a Zipf stream.
func BenchmarkSpaceSavingObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%07d", zipf.Uint64())
	}
	c := spacesaving.New(10000, 60, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(keys[i%len(keys)], float64(i)/1000)
	}
}

// BenchmarkHLLAdd measures one cardinality-estimate insertion.
func BenchmarkHLLAdd(b *testing.B) {
	keys := make([]string, 1<<12)
	for i := range keys {
		keys[i] = fmt.Sprintf("item-%d", i)
	}
	b.Run("string", func(b *testing.B) {
		s := hll.MustNew(10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Add(keys[i%len(keys)])
		}
	})
	// The path the feature sets actually take now: the hash is computed
	// once per summary field and shared by every sketch that counts it.
	b.Run("hash", func(b *testing.B) {
		hashes := make([]uint64, len(keys))
		for i, k := range keys {
			hashes[i] = hll.HashString(k)
		}
		s := hll.MustNew(10)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AddHash(hashes[i%len(hashes)])
		}
	})
}

// ---- ablations (design choices from DESIGN.md) ----

// BenchmarkAblationAdmission compares Space-Saving with and without the
// Bloom-filter eviction guard under a one-off-heavy stream: the guard
// trades one filter lookup for far fewer evictions.
func BenchmarkAblationAdmission(b *testing.B) {
	mkKeys := func() []string {
		rng := rand.New(rand.NewSource(2))
		keys := make([]string, 1<<16)
		for i := range keys {
			if rng.Float64() < 0.5 {
				keys[i] = fmt.Sprintf("heavy%03d", rng.Intn(200))
			} else {
				keys[i] = fmt.Sprintf("oneoff%09d", rng.Int31())
			}
		}
		return keys
	}
	b.Run("with-bloom", func(b *testing.B) {
		keys := mkKeys()
		c := spacesaving.New(1000, 60, bloom.New(1<<20, 0.01))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Observe(keys[i%len(keys)], float64(i)/1000)
		}
	})
	b.Run("no-bloom", func(b *testing.B) {
		keys := mkKeys()
		c := spacesaving.New(1000, 60, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Observe(keys[i%len(keys)], float64(i)/1000)
		}
	})
}

// BenchmarkAblationHLLPrecision sweeps estimator precision: memory per
// object grows 2x per step while the relative error halves per 2 steps.
func BenchmarkAblationHLLPrecision(b *testing.B) {
	for _, p := range []uint8{10, 12, 14} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			s := hll.MustNew(p)
			keys := make([]string, 1<<12)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(keys[i%len(keys)])
			}
		})
	}
}

// BenchmarkAblationFreshSkip compares snapshot dumping with and without
// the §2.4 skip of objects that have not survived a full window.
func BenchmarkAblationFreshSkip(b *testing.B) {
	for _, skip := range []bool{true, false} {
		name := "skip-fresh"
		if !skip {
			name = "keep-fresh"
		}
		b.Run(name, func(b *testing.B) {
			simCfg := simnet.DefaultConfig()
			simCfg.Duration = 20
			simCfg.QPS = 1000
			sim := simnet.New(simCfg)
			var sums []sie.Summary
			var s sie.Summarizer
			sim.Run(func(tx *sie.Transaction) {
				var sum sie.Summary
				if err := s.Summarize(tx, &sum); err == nil {
					sum.V4Addrs, sum.V6Addrs = nil, nil
					sum.AnswerTTLs, sum.NSTTLs, sum.NSNames = nil, nil, nil
					sums = append(sums, sum)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := observatory.DefaultConfig()
				cfg.SkipFreshObjects = skip
				pipe := observatory.New(cfg,
					[]observatory.Aggregation{{Name: "srvip", K: 1000, Key: observatory.SrvIPKey}}, nil)
				for j := range sums {
					pipe.Ingest(&sums[j], float64(j)/1000)
				}
				pipe.Flush()
			}
		})
	}
}

func addr4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }
