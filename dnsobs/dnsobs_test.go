package dnsobs_test

import (
	"testing"

	"dnsobservatory/dnsobs"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: simulate, summarize, ingest, aggregate.
func TestFacadeEndToEnd(t *testing.T) {
	simCfg := dnsobs.DefaultSimulationConfig()
	simCfg.Duration = 90
	simCfg.QPS = 300
	simCfg.Resolvers = 30
	simCfg.SLDs = 200

	var snaps []*dnsobs.Snapshot
	cfg := dnsobs.DefaultPipelineConfig()
	cfg.SkipFreshObjects = false
	pipe := dnsobs.NewPipeline(cfg,
		[]dnsobs.Aggregation{
			{Name: "srvip", K: 300, Key: dnsobs.SrvIPKey},
			{Name: "etld", K: 100, Key: dnsobs.ETLDKey(nil)},
		},
		func(s *dnsobs.Snapshot) { snaps = append(snaps, s) })

	var summarizer dnsobs.Summarizer
	var sum dnsobs.Summary
	sim := dnsobs.NewSimulation(simCfg)
	stats := sim.Run(func(tx *dnsobs.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(simCfg.Start).Seconds())
	})
	pipe.Flush()

	if stats.Transactions == 0 || len(snaps) == 0 {
		t.Fatalf("stats=%+v snaps=%d", stats, len(snaps))
	}
	var srvip []*dnsobs.Snapshot
	for _, s := range snaps {
		if s.Aggregation == "srvip" {
			srvip = append(srvip, s)
		}
	}
	total, err := dnsobs.AggregateSnapshots(srvip)
	if err != nil {
		t.Fatal(err)
	}
	if len(total.Rows) == 0 {
		t.Fatal("no rows in aggregate")
	}
	cdf := dnsobs.DistributionCDF(total)
	if cdf.ShareOfTopN(len(cdf.All)) < 0.999 {
		t.Errorf("CDF does not reach 1: %f", cdf.ShareOfTopN(len(cdf.All)))
	}
	rows := dnsobs.ASTable(total, sim.Infra.Routing, 5)
	if len(rows) == 0 {
		t.Error("empty AS table")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if got := dnsobs.ETLD("www.bbc.co.uk"); got != "co.uk." {
		t.Errorf("ETLD = %q", got)
	}
	if got := dnsobs.ESLD("www.bbc.co.uk"); got != "bbc.co.uk." {
		t.Errorf("ESLD = %q", got)
	}
	if dnsobs.Minutely.Seconds() != 60 || dnsobs.Hourly.Seconds() != 3600 {
		t.Error("level seconds wrong")
	}
	aggs := dnsobs.StandardAggregations(1)
	if len(aggs) != 8 {
		t.Errorf("standard aggregations = %d", len(aggs))
	}
}
