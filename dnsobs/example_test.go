package dnsobs_test

import (
	"fmt"

	"dnsobservatory/dnsobs"
)

// ExampleNewPipeline runs one minute of synthetic passive DNS through
// the Observatory and prints the three busiest nameservers. Counter
// features are exact, so the output is reproducible for a fixed seed.
func ExampleNewPipeline() {
	simCfg := dnsobs.DefaultSimulationConfig()
	simCfg.Seed = 11
	simCfg.Duration = 60
	simCfg.QPS = 500
	simCfg.Resolvers = 50
	simCfg.SLDs = 400

	var snaps []*dnsobs.Snapshot
	cfg := dnsobs.DefaultPipelineConfig()
	cfg.SkipFreshObjects = false
	pipe := dnsobs.NewPipeline(cfg,
		[]dnsobs.Aggregation{{Name: "srvip", K: 500, Key: dnsobs.SrvIPKey}},
		func(s *dnsobs.Snapshot) { snaps = append(snaps, s) })

	var summarizer dnsobs.Summarizer
	var sum dnsobs.Summary
	sim := dnsobs.NewSimulation(simCfg)
	sim.Run(func(tx *dnsobs.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err == nil {
			pipe.Ingest(&sum, tx.QueryTime.Sub(simCfg.Start).Seconds())
		}
	})
	pipe.Flush()

	total, err := dnsobs.AggregateSnapshots(snaps)
	if err != nil {
		fmt.Println("aggregate:", err)
		return
	}
	total.SortByColumn("hits")
	for i := 0; i < 3 && i < len(total.Rows); i++ {
		hits, _ := total.Value(&total.Rows[i], "hits")
		fmt.Printf("%d. %s %.0f queries/min\n", i+1, total.Rows[i].Key, hits)
	}
	// Output:
	// 1. 13.1.13.6 2490 queries/min
	// 2. 13.10.0.1 1193 queries/min
	// 3. 13.20.13.6 674 queries/min
}

// ExampleETLD shows Public-Suffix-List-aware domain grouping.
func ExampleETLD() {
	fmt.Println(dnsobs.ETLD("www.bbc.co.uk"))
	fmt.Println(dnsobs.ESLD("www.bbc.co.uk"))
	fmt.Println(dnsobs.ESLD("a.b.example.com."))
	// Output:
	// co.uk.
	// bbc.co.uk.
	// example.com.
}
