// Package dnsobs is the public API of the DNS Observatory library: a
// stream-analytics platform for passive DNS (Foremski, Gasser, Moura —
// "DNS Observatory: The Big Picture of the DNS", IMC 2019).
//
// The pipeline ingests resolver↔nameserver transaction summaries,
// tracks the Top-k DNS objects of each configured aggregation with the
// Space-Saving algorithm, accumulates ~45 traffic features per object
// (RCODE counters, QNAME-depth averages, HyperLogLog cardinalities,
// top-TTL trackers, delay/hop/size quartiles), and emits one TSV
// snapshot per aggregation every 60 seconds. Snapshots aggregate in
// time (minutely → 10-minutely → hourly → daily → …) with a retention
// policy, and the analysis helpers regenerate every table and figure of
// the paper's evaluation.
//
// A minimal session:
//
//	pipe := dnsobs.NewPipeline(dnsobs.DefaultPipelineConfig(),
//		dnsobs.StandardAggregations(0.1), onSnapshot)
//	var s dnsobs.Summarizer
//	var sum dnsobs.Summary
//	for tx := range transactions {
//		if err := s.Summarize(tx, &sum); err == nil {
//			pipe.Ingest(&sum, now)
//		}
//	}
//	pipe.Flush()
//
// Raw traffic can come from a real capture feed or from the bundled
// synthetic Internet (dnsobs.NewSimulation), which stands in for the
// proprietary SIE feed the paper used.
package dnsobs

import (
	"dnsobservatory/internal/analysis"
	"dnsobservatory/internal/dnssec"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/spacesaving"
	"dnsobservatory/internal/tsv"
)

// Core stream types.
type (
	// Transaction is one captured DNS query/response pair: raw packets
	// from the IP header up, with timestamps and the contributing
	// sensor.
	Transaction = sie.Transaction
	// Summary is the preprocessed per-transaction record retained by
	// the pipeline (all privacy-sensitive fields already dropped).
	Summary = sie.Summary
	// Summarizer parses transactions into summaries with reusable
	// buffers.
	Summarizer = sie.Summarizer
	// StreamReader decodes framed transactions from an io.Reader.
	StreamReader = sie.Reader
	// StreamWriter encodes framed transactions onto an io.Writer.
	StreamWriter = sie.Writer
)

// NewStreamReader and NewStreamWriter wrap an SIE-style framed stream.
var (
	NewStreamReader = sie.NewReader
	NewStreamWriter = sie.NewWriter
)

// Pipeline types.
type (
	// Pipeline is the Observatory core: Top-k tracking plus feature
	// accumulation per aggregation, dumped every window.
	Pipeline = observatory.Pipeline
	// PipelineConfig tunes windows, decay, admission filters and
	// feature sizing.
	PipelineConfig = observatory.Config
	// Aggregation defines one tracked object universe (a key extractor
	// and a Top-k capacity).
	Aggregation = observatory.Aggregation
	// KeyFunc extracts an object key from a summary.
	KeyFunc = observatory.KeyFunc
	// TopKEntry is a live Space-Saving cache entry.
	TopKEntry = spacesaving.Entry
)

// Pipeline constructors and the standard datasets of the paper (§3.1).
var (
	NewPipeline           = observatory.New
	DefaultPipelineConfig = observatory.DefaultConfig
	StandardAggregations  = observatory.StandardAggregations

	// Key extractors for custom aggregations.
	SrvIPKey  = observatory.SrvIPKey
	SrcIPKey  = observatory.SrcIPKey
	SrcSrvKey = observatory.SrcSrvKey
	QNameKey  = observatory.QNameKey
	QTypeKey  = observatory.QTypeKey
	RCodeKey  = observatory.RCodeKey
	AAFQDNKey = observatory.AAFQDNKey
	ETLDKey   = observatory.ETLDKeyFunc
	ESLDKey   = observatory.ESLDKeyFunc
)

// Time-series types: TSV snapshots and the aggregation cascade (§2.4).
type (
	// Snapshot is one TSV file: the top objects of one aggregation over
	// one time window.
	Snapshot = tsv.Snapshot
	// SnapshotRow is one object's feature vector.
	SnapshotRow = tsv.Row
	// SnapshotStore manages snapshot files, cascading aggregation and
	// retention in a directory. Both backends (TSV text and compressed
	// columnar) share this type; see NewSnapshotStoreBackend.
	SnapshotStore = tsv.Store
	// SnapshotStorer is the read/write interface both backends satisfy;
	// query clients and the web UI depend on it, not on a concrete store.
	SnapshotStorer = tsv.SnapshotStore
	// TimeLevel is a granularity of the cascade.
	TimeLevel = tsv.Level

	// SnapshotQuery is one read against a store: time range, projection,
	// predicates, top-k.
	SnapshotQuery = tsv.Query
	// SnapshotQueryResult is a query's aggregated, ranked answer.
	SnapshotQueryResult = tsv.Result
	// SnapshotQueryEngine runs queries and keeps query-side metrics.
	SnapshotQueryEngine = tsv.Engine
	// SnapshotProjection selects columns, a key, and value predicates
	// for a store read.
	SnapshotProjection = tsv.Projection
	// SnapshotPredicate keeps rows whose column value lies in [Min, Max].
	SnapshotPredicate = tsv.Pred
)

// Snapshot store and aggregation helpers.
var (
	NewSnapshotStore = tsv.NewStore
	// NewColumnarSnapshotStore stores snapshots in the compressed
	// columnar format with per-block min/max and bloom indexes.
	NewColumnarSnapshotStore = tsv.NewColumnarStore
	// NewSnapshotStoreBackend selects the backend by name
	// (StoreBackendTSV or StoreBackendColumnar).
	NewSnapshotStoreBackend = tsv.NewStoreBackend
	AggregateSnapshots      = tsv.Aggregate
	ReadSnapshot            = tsv.Read
	// DecodeColumnarSnapshot decodes one columnar snapshot file;
	// IsColumnarSnapshot sniffs the format.
	DecodeColumnarSnapshot = tsv.DecodeColumnar
	IsColumnarSnapshot     = tsv.IsColumnar
	// QuerySnapshots answers one query against any store backend.
	QuerySnapshots = tsv.RunQuery
	// NewSnapshotQueryEngine builds a reusable, instrumentable engine.
	NewSnapshotQueryEngine = tsv.NewEngine
)

// Store backend names for NewSnapshotStoreBackend.
const (
	StoreBackendTSV      = tsv.BackendTSV
	StoreBackendColumnar = tsv.BackendColumnar
)

// Cascade levels.
const (
	Minutely     = tsv.Minutely
	Decaminutely = tsv.Decaminutely
	Hourly       = tsv.Hourly
	Daily        = tsv.Daily
	Monthly      = tsv.Monthly
	Yearly       = tsv.Yearly
)

// Synthetic traffic: the SIE-feed substitute.
type (
	// Simulation is the synthetic Internet scenario generator.
	Simulation = simnet.Sim
	// SimulationConfig parameterizes the scenario.
	SimulationConfig = simnet.Config
	// SimulationEvent is a scheduled infrastructure change.
	SimulationEvent = simnet.Event
	// WorkloadMix weights the client query classes.
	WorkloadMix = simnet.WorkloadMix
)

// Simulation constructors and events.
var (
	NewSimulation           = simnet.New
	DefaultSimulationConfig = simnet.DefaultConfig
	DefaultWorkloadMix      = simnet.DefaultMix

	TTLChangeEvent     = simnet.TTLChangeEvent
	NegTTLChangeEvent  = simnet.NegTTLChangeEvent
	RenumberEvent      = simnet.RenumberEvent
	NSChangeEvent      = simnet.NSChangeEvent
	NonConformingEvent = simnet.NonConformingEvent
	V6EnableEvent      = simnet.V6EnableEvent
	PRSDTargetEvent    = simnet.PRSDTargetEvent
)

// Analysis helpers: the paper's evaluation as a library.
type (
	// RunResult bundles a simulate→observe pass with its snapshots.
	RunResult = analysis.RunResult
	// TrafficCDF is the Fig. 2 artifact.
	TrafficCDF = analysis.TrafficCDF
	// OrgRow is one Table 1 row.
	OrgRow = analysis.OrgRow
	// QTypeRow is one Table 2 row.
	QTypeRow = analysis.QTypeRow
	// HERow is one Fig. 9 row.
	HERow = analysis.HERow
)

// Analysis entry points.
var (
	Run             = analysis.Run
	RunWith         = analysis.RunWith
	DistributionCDF = analysis.DistributionCDF
	ASTable         = analysis.ASTable
	QTypeTable      = analysis.QTypeTable
	HappyEyeballs   = analysis.HappyEyeballs
	TTLSeries       = analysis.TTLSeries
)

// Effective-TLD helpers (Public Suffix List semantics).
var (
	ETLD = publicsuffix.ETLD
	ESLD = publicsuffix.ESLD
)

// DNSSEC: Ed25519 zone keys, RFC 4034 signing and validation.
type (
	// ZoneKey signs and validates RRsets for one zone.
	ZoneKey = dnssec.Key
)

// DNSSEC entry points.
var (
	NewZoneKey       = dnssec.NewKey
	ValidateRRSet    = dnssec.Validate
	VerifyDSRecord   = dnssec.VerifyDS
	DNSSECKeyTag     = dnssec.KeyTag
	AlgorithmEd25519 = dnssec.AlgEd25519
)
